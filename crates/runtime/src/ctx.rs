//! Per-thread execution context and the transaction-retry mechanism of
//! Figure 1.
//!
//! [`ThreadCtx::atomic`] is the workspace's `TM_BEGIN`/`TM_END`: it runs a
//! closure as a best-effort hardware transaction, retrying on aborts under
//! three tunable counters — lock-retry, persistent-retry and transient-retry
//! (Section 3) — and finally reverting to irrevocable execution under the
//! global lock. On Blue Gene/Q the paper could only use the system-provided
//! mechanism: a single retry counter with an adaptation heuristic and, in
//! long-running mode, *lazy* lock subscription; [`ThreadCtx::atomic`]
//! switches to that behaviour automatically when the platform model is
//! Blue Gene/Q.
//!
//! The context also exposes the processor-specific interfaces evaluated in
//! Section 6: [`ThreadCtx::atomic_hle`] (Intel hardware lock elision),
//! [`ThreadCtx::atomic_constrained`] (zEC12 constrained transactions) and
//! [`ThreadCtx::try_rollback_only`] (POWER8 rollback-only transactions).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;

use htm_core::{Abort, AbortCategory, AbortCause, SyncClock, TxMemory, TxResult, WordAddr};
use htm_hytm::adapt::{AdaptSignal, AdaptiveController, Tier};
use htm_hytm::{FallbackPolicy, ROT_RETRIES, STM_COMMIT_RETRIES};
use htm_machine::{BgqMode, Machine, Platform};

use crate::lock::GlobalLock;
use crate::replay::{AttemptRecord, BlockOutcome, BlockRecord, Turnstile};
use crate::stats::ThreadStats;
use crate::tx::{ExecMode, Tx, TxnEngine};

/// Explicit-abort code used when a transaction starts while the global lock
/// is held (Figure 1, line 27).
pub const LOCK_HELD_ABORT: u8 = 0xff;

/// Maximum retry counts for the three counters of Figure 1 (plus the single
/// Blue Gene/Q counter).
///
/// The paper tunes these per (platform × benchmark × thread count); the
/// experiment harness's tuner does the same grid search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// `MAX_LOCK_RETRY_COUNT`: retries after aborts caused by global-lock
    /// conflicts.
    pub lock_retries: u32,
    /// `MAX_PERSISTENT_RETRY_COUNT`: retries after aborts the platform
    /// reports as persistent (capacity overflows).
    pub persistent_retries: u32,
    /// `MAX_TRANSIENT_RETRY_COUNT`: retries after all other aborts.
    pub transient_retries: u32,
    /// Blue Gene/Q's single system-provided retry counter.
    pub bgq_retries: u32,
}

impl RetryPolicy {
    /// A policy with all counters set to `n` (coarse tuning knob).
    pub fn uniform(n: u32) -> RetryPolicy {
        RetryPolicy { lock_retries: n, persistent_retries: n, transient_retries: n, bgq_retries: n }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { lock_retries: 4, persistent_retries: 2, transient_retries: 8, bgq_retries: 8 }
    }
}

/// The livelock/lemming watchdog: a last line of defence behind the retry
/// counters.
///
/// The Figure-1 mechanism already guarantees progress for a *single* block
/// (the counters are finite, so every block eventually reaches the
/// irrevocable fallback), but pathological schedules — and fault plans —
/// can still make a thread churn through aborts at full speed. The watchdog
/// tracks attempts per block and, past [`WatchdogConfig::starvation_bound`],
/// *trips*: the block and the next [`WatchdogConfig::degraded_blocks`]
/// blocks run irrevocably under the global lock (graceful degradation), and
/// the thread's retry backoff is escalated by one doubling (capped at
/// [`WatchdogConfig::escalation_cap`]).
///
/// The default bound (64) is far above what the default retry policies can
/// reach (≤ 15 attempts per block), so default-configured runs never trip
/// and stay bit-identical to a watchdog-free build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Attempts (per atomic block) after which the watchdog trips;
    /// 0 disables the watchdog entirely.
    pub starvation_bound: u32,
    /// Atomic blocks forced into irrevocable execution after a trip.
    pub degraded_blocks: u32,
    /// Maximum extra backoff doublings accumulated from repeated trips.
    pub escalation_cap: u32,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { starvation_bound: 64, degraded_blocks: 8, escalation_cap: 3 }
    }
}

impl WatchdogConfig {
    /// A disabled watchdog (no bound, no degradation, no escalation).
    pub fn disabled() -> WatchdogConfig {
        WatchdogConfig { starvation_bound: 0, degraded_blocks: 0, escalation_cap: 0 }
    }

    /// Whether `attempt` attempts on one block means starvation.
    fn starved(&self, attempt: u32) -> bool {
        self.starvation_bound > 0 && attempt >= self.starvation_bound
    }
}

/// Blue Gene/Q's adaptation heuristic: transactions that fell back on the
/// global lock too frequently are not allowed to retry on the next abort
/// (Section 3 — the paper found it acts "too early" in intruder, driving a
/// 56% serialization ratio at 16 threads).
#[derive(Debug, Default)]
struct BgqAdapt {
    window: u64,
    len: u32,
}

impl BgqAdapt {
    const WINDOW: u32 = 32;

    fn record(&mut self, fell_back: bool) {
        self.window = (self.window << 1) | fell_back as u64;
        self.len = (self.len + 1).min(Self::WINDOW);
    }

    /// Whether retries are suppressed for the next transaction.
    fn suppress_retries(&self) -> bool {
        if self.len < 8 {
            return false;
        }
        let mask = if self.len >= 64 { u64::MAX } else { (1u64 << self.len) - 1 };
        let fallbacks = (self.window & mask).count_ones();
        // More than half of recent blocks serialized. (A lower threshold
        // is self-reinforcing: suppressed retries cause fallbacks, which
        // keep the window full — the heuristic can never recover.)
        fallbacks * 2 > self.len
    }
}

enum Outcome<R> {
    Committed(R),
    Aborted(AbortCause),
}

/// Replay state: this thread's recorded blocks plus the global turnstile
/// serializing commits in recorded order.
struct Replayer {
    blocks: VecDeque<BlockRecord>,
    turnstile: Turnstile,
}

/// Per-worker-thread execution context.
///
/// Owns the thread's [`TxnEngine`] plus the retry-mechanism state, and is
/// the API surface benchmark code uses outside transactions (allocation,
/// non-transactional access, compute-cost charging).
pub struct ThreadCtx {
    eng: TxnEngine,
    lock: GlobalLock,
    policy: RetryPolicy,
    fallback: FallbackPolicy,
    bgq_adapt: BgqAdapt,
    constrained_arbiter: Arc<Mutex<()>>,
    hle: bool,
    watchdog: WatchdogConfig,
    /// Atomic blocks remaining in degraded (forced-irrevocable) mode.
    degraded_left: u32,
    /// Extra backoff doublings from watchdog trips (0 until the first trip,
    /// so untripped runs are bit-identical to pre-watchdog behaviour).
    trip_shift: u32,
    /// Recorded atomic blocks (record mode only).
    recorder: Option<Vec<BlockRecord>>,
    /// Trace being replayed (replay mode only).
    replayer: Option<Replayer>,
    /// The global lock's vector clock (sanitizer runs only): irrevocable
    /// sections on the same lock are release/acquire-ordered.
    lock_sync: Option<Arc<SyncClock>>,
    /// The `htm-adapt` contention manager (present only under
    /// [`FallbackPolicy::Adaptive`]).
    adapt: Option<AdaptiveController>,
    /// Controller tier switches already mirrored into the stats counter.
    adapt_switches_seen: u64,
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx").field("thread_id", &self.thread_id()).finish()
    }
}

impl ThreadCtx {
    pub(crate) fn new(
        eng: TxnEngine,
        lock: GlobalLock,
        policy: RetryPolicy,
        fallback: FallbackPolicy,
        constrained_arbiter: Arc<Mutex<()>>,
        watchdog: WatchdogConfig,
    ) -> ThreadCtx {
        let adapt = make_adapt(&eng, fallback);
        ThreadCtx {
            eng,
            lock,
            policy,
            fallback,
            bgq_adapt: BgqAdapt::default(),
            constrained_arbiter,
            hle: false,
            watchdog,
            degraded_left: 0,
            trip_shift: 0,
            recorder: None,
            replayer: None,
            lock_sync: None,
            adapt,
            adapt_switches_seen: 0,
        }
    }

    /// Turns on the happens-before race sanitizer for this thread.
    /// `lock_sync` is the run-wide vector clock of the global lock.
    pub(crate) fn enable_sanitize(&mut self, lock_sync: Arc<SyncClock>) {
        self.eng.enable_sanitize();
        self.lock_sync = Some(lock_sync);
    }

    /// Starts recording this thread's atomic-block decision stream.
    pub(crate) fn enable_recording(&mut self) {
        self.recorder = Some(Vec::new());
        self.eng.set_log_allocs(true);
    }

    /// Takes the recorded blocks (end of a record-mode run).
    pub(crate) fn take_recording(&mut self) -> Vec<BlockRecord> {
        self.recorder.take().unwrap_or_default()
    }

    /// Puts this thread into replay mode, following `blocks` and the shared
    /// commit `turnstile`.
    pub(crate) fn enable_replay(&mut self, blocks: Vec<BlockRecord>, turnstile: Turnstile) {
        self.replayer = Some(Replayer { blocks: blocks.into(), turnstile });
        self.eng.set_replay_mode(true);
    }

    /// Recorded blocks the replayed workload did not consume (0 for a
    /// faithful replay).
    pub(crate) fn replay_leftover(&self) -> usize {
        self.replayer.as_ref().map_or(0, |r| r.blocks.len())
    }

    /// Routes subsequent [`ThreadCtx::atomic`] calls through hardware lock
    /// elision instead of the RTM retry mechanism (the Figure-7 comparison:
    /// same benchmark code, the HLE interface).
    ///
    /// # Panics
    ///
    /// Panics when enabling HLE on a platform without it.
    pub fn set_hle(&mut self, on: bool) {
        if on {
            assert!(
                self.eng.machine().config().has_hle,
                "{} has no hardware lock elision",
                self.eng.machine().config().name
            );
        }
        self.hle = on;
    }

    // ------------------------------------------------------------------
    // Non-transactional surface
    // ------------------------------------------------------------------

    /// This worker's thread id (0-based).
    pub fn thread_id(&self) -> u32 {
        self.eng.thread_id()
    }

    /// Number of worker threads in the run.
    pub fn num_threads(&self) -> u32 {
        self.eng.num_threads()
    }

    /// The simulated memory.
    pub fn mem(&self) -> &Arc<TxMemory> {
        self.eng.mem()
    }

    /// The platform model.
    pub fn machine(&self) -> &Arc<Machine> {
        self.eng.machine()
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replaces the retry policy (tuning sweeps).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The fallback policy in force (what runs when the retry counters are
    /// exhausted).
    pub fn fallback(&self) -> FallbackPolicy {
        self.fallback
    }

    /// Replaces the fallback policy (installing a fresh adaptive
    /// controller when switching to [`FallbackPolicy::Adaptive`]).
    pub fn set_fallback(&mut self, fallback: FallbackPolicy) {
        self.fallback = fallback;
        self.adapt = make_adapt(&self.eng, fallback);
        self.adapt_switches_seen = 0;
    }

    /// The fallback tier actually taken: [`FallbackPolicy::Rot`] needs
    /// POWER8-style rollback-only transactions and degrades to the global
    /// lock elsewhere.
    fn effective_fallback(&self) -> FallbackPolicy {
        match self.fallback {
            FallbackPolicy::Rot if !self.eng.machine().config().has_rollback_only => {
                FallbackPolicy::Lock
            }
            f => f,
        }
    }

    /// The livelock-watchdog configuration in force.
    pub fn watchdog(&self) -> WatchdogConfig {
        self.watchdog
    }

    /// Replaces the watchdog configuration (robustness experiments).
    pub fn set_watchdog(&mut self, watchdog: WatchdogConfig) {
        self.watchdog = watchdog;
    }

    /// Charges `cycles` of simulated compute to this thread (scaled by SMT
    /// co-residency).
    pub fn tick(&self, cycles: u64) {
        self.eng.charge(cycles);
        self.eng.maybe_yield();
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.eng.clock().now()
    }

    /// Advances this worker's simulated clock to at least `t` (used by
    /// synchronization constructs such as phase barriers: a thread resumes
    /// no earlier than the latest arriving thread).
    pub fn advance_clock_to(&self, t: u64) {
        self.eng.clock().advance_to(t);
    }

    /// Charges one cache-missing access (see `Tx::charge_miss`).
    pub fn charge_miss(&self) {
        let running = self.eng.machine().cores().threads_running().max(1) as usize;
        let c = self.eng.machine().config().cost.miss_cost(running);
        self.eng.charge(c);
    }

    /// Allocates simulated memory (non-transactional).
    pub fn alloc(&mut self, words: u32) -> WordAddr {
        self.eng.alloc_mut().alloc(words)
    }

    /// Allocates cache-line-aligned simulated memory (the kmeans fix).
    pub fn alloc_aligned(&mut self, words: u32, align_bytes: u32) -> WordAddr {
        self.eng.alloc_mut().alloc_aligned(words, align_bytes)
    }

    /// Allocates `words` on conflict-detection line(s) of their own: the
    /// start is line-aligned and the size is rounded up to whole lines, so
    /// no later allocation can share a line with this block. Use for hot
    /// structure headers that would otherwise falsely conflict with
    /// whatever happens to be allocated next to them.
    pub fn alloc_line(&mut self, words: u32) -> WordAddr {
        let gran = self.eng.machine().config().granularity.max(8);
        let wpl = gran / 8;
        let padded = words.div_ceil(wpl) * wpl;
        self.eng.alloc_mut().alloc_aligned(padded, gran)
    }

    /// Frees a block for reuse by this thread.
    pub fn free(&mut self, addr: WordAddr, words: u32) {
        self.eng.alloc_mut().free(addr, words);
    }

    /// Non-transactional load outside atomic blocks (charges one access).
    pub fn read_word(&self, addr: WordAddr) -> u64 {
        self.eng.charge(self.eng.machine().config().cost.load);
        self.eng.hb_nontx_access(addr, false);
        self.eng.mem().nontx_load(None, addr)
    }

    /// Non-transactional store outside atomic blocks.
    pub fn write_word(&self, addr: WordAddr, value: u64) {
        self.eng.charge(self.eng.machine().config().cost.store);
        self.eng.mem().nontx_store(None, addr, value);
        self.eng.cert_nontx_write(addr, value);
        self.eng.hb_nontx_access(addr, true);
    }

    /// Non-transactional CAS outside atomic blocks (lock-free baselines).
    ///
    /// # Errors
    ///
    /// Returns the observed value when it differs from `expected`.
    pub fn cas_word(&self, addr: WordAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.eng.clock().tick(self.eng.machine().config().cost.lock_op);
        let r = self.eng.mem().nontx_cas(None, addr, expected, new);
        if r.is_ok() {
            self.eng.cert_nontx_write(addr, new);
        }
        // A CAS is a write when it succeeds, and still a read when it fails.
        self.eng.hb_nontx_access(addr, r.is_ok());
        r
    }

    /// Non-transactional fetch-add outside atomic blocks (bounded-queue
    /// head/tail handoff in service workloads): retries the CAS until it
    /// installs `observed + delta` and returns the value it replaced.
    pub fn fetch_add_word(&self, addr: WordAddr, delta: u64) -> u64 {
        let mut cur = self.read_word(addr);
        loop {
            match self.cas_word(addr, cur, cur.wrapping_add(delta)) {
                Ok(_) => return cur,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one completed request's simulated-cycle latency into this
    /// thread's [`LatencyHistogram`](crate::LatencyHistogram) (folded into
    /// [`RunStats::latency`](crate::RunStats::latency) after the run).
    pub fn record_latency(&mut self, cycles: u64) {
        self.eng.stats.latency.record(cycles);
    }

    /// Release edge on `sync` for the race sanitizer (no-op when the
    /// sanitizer is off). Synchronization constructs built on host
    /// primitives — phase barriers, ad-hoc flags — call this *before* the
    /// host-side wait/publish.
    pub fn hb_release(&self, sync: &SyncClock) {
        self.eng.hb_release(sync);
    }

    /// Acquire edge on `sync` for the race sanitizer (no-op when the
    /// sanitizer is off); call *after* the host-side wait.
    pub fn hb_acquire(&self, sync: &SyncClock) {
        self.eng.hb_acquire(sync);
    }

    /// Deterministic per-thread random-number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.eng.rng_mut()
    }

    /// A snapshot of this thread's statistics so far.
    pub fn stats(&self) -> &ThreadStats {
        &self.eng.stats
    }

    pub(crate) fn take_stats(&mut self) -> ThreadStats {
        self.eng.take_stats()
    }

    pub(crate) fn engine_mut(&mut self) -> &mut TxnEngine {
        &mut self.eng
    }

    // ------------------------------------------------------------------
    // The retry mechanism (Figure 1)
    // ------------------------------------------------------------------

    /// Executes `body` atomically: as a hardware transaction with retries,
    /// falling back to irrevocable execution under the global lock.
    ///
    /// `body` must be idempotent up to its transactional effects (it may run
    /// many times); all side effects on simulated memory go through the
    /// [`Tx`] handle and are rolled back on abort.
    ///
    /// # Panics
    ///
    /// Panics if called inside another atomic block (no nesting), or if
    /// `body` returns `Err` during irrevocable execution.
    pub fn atomic<R>(&mut self, mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        if self.hle && self.eng.mode() != ExecMode::Sequential {
            return self.atomic_hle(body);
        }
        if self.eng.mode() == ExecMode::Sequential {
            self.eng.begin_sequential();
            let r =
                body(&mut Tx { eng: &mut self.eng }).expect("sequential execution cannot abort");
            self.eng.end_sequential();
            return r;
        }

        if self.replayer.is_some() {
            return self.replay_block(&mut body);
        }

        // Model-checker scheduling point: one pause per atomic block, before
        // any speculation starts (covers the degraded and adaptive paths too).
        htm_core::coop::point(htm_core::coop::CoopPoint::BlockStart);

        let cfg = self.eng.machine().config();
        let is_bgq = cfg.platform == Platform::BlueGeneQ;
        // Graceful degradation after a watchdog trip: skip speculation
        // entirely for a while instead of burning attempts a starved thread
        // has no hope of committing.
        if self.degraded_left > 0 {
            self.degraded_left -= 1;
            let r = self.run_degraded(&mut body);
            self.record_block(
                Vec::new(),
                BlockOutcome::Irrevocable {
                    order: self.eng.last_commit_seq(),
                    degraded: true,
                    trip: false,
                },
            );
            if is_bgq {
                self.bgq_adapt.record(true);
            }
            return r;
        }
        if self.fallback == FallbackPolicy::Adaptive {
            return self.atomic_adaptive(&mut body);
        }
        let lazy_subscription = is_bgq && cfg.bgq_mode == Some(BgqMode::LongRunning);
        let mut lock_retries = self.policy.lock_retries;
        let mut persistent_retries = self.policy.persistent_retries;
        let mut transient_retries = self.policy.transient_retries;
        // Adaptation throttles rather than forbids retries: the real
        // mechanism recovers once transactions stop falling back, so it
        // must leave a path back to hardware execution.
        let mut bgq_retries = if self.bgq_adapt.suppress_retries() {
            1.min(self.policy.bgq_retries)
        } else {
            self.policy.bgq_retries
        };
        let reports_persistence = cfg.reports_persistence;
        let mut attempt = 0u32;
        let mut rec_attempts: Vec<AttemptRecord> = Vec::new();

        loop {
            // Figure 1 line 9: wait for the lock (lemming avoidance).
            let waited = {
                let cost = self.eng.machine().config().cost;
                self.lock.wait_released(self.eng.mem(), self.eng.clock(), &cost)
            };
            self.eng.stats.lock_wait_cycles += waited;
            if waited > 0 {
                // Jitter after a lock wait: all doomed waiters are released
                // at the same instant, and restarting them in lockstep
                // recreates the conflict that serialized them.
                let jitter = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..512u64);
                self.tick(jitter);
            }

            let snap = self.attempt_snapshot();
            match self.attempt_hw(&mut body, lazy_subscription, false, false) {
                Outcome::Committed(r) => {
                    self.record_block(
                        rec_attempts,
                        BlockOutcome::Hw { order: self.eng.last_commit_seq() },
                    );
                    if is_bgq {
                        self.bgq_adapt.record(false);
                    }
                    return r;
                }
                Outcome::Aborted(cause) => {
                    let (category, lock_related) = self.classify_and_record(cause, is_bgq);
                    self.record_attempt(&mut rec_attempts, snap, cause, category);
                    let retry = if is_bgq {
                        consume(&mut bgq_retries)
                    } else if lock_related {
                        consume(&mut lock_retries)
                    } else if reports_persistence && cause.is_capacity() {
                        consume(&mut persistent_retries)
                    } else {
                        consume(&mut transient_retries)
                    };
                    if !retry {
                        let r = self.run_fallback(&mut body, rec_attempts);
                        if is_bgq {
                            self.bgq_adapt.record(true);
                        }
                        return r;
                    }
                    // Randomized exponential backoff between retries
                    // (Blue Gene/Q's system software and every practical
                    // retry handler do this); the simulated delay also
                    // translates into real absence, decorrelating the
                    // contenders.
                    attempt += 1;
                    if self.watchdog.starved(attempt) {
                        let r = self.watchdog_trip(&mut body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: true,
                                trip: true,
                            },
                        );
                        if is_bgq {
                            self.bgq_adapt.record(true);
                        }
                        return r;
                    }
                    let ceiling = 32u64 << (attempt.min(7) + self.trip_shift);
                    let pause = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..ceiling);
                    self.tick(pause);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Record/replay plumbing
    // ------------------------------------------------------------------

    /// Snapshot taken before a hardware attempt so an abort can be recorded
    /// with the workload-RNG draws and allocations its body consumed.
    /// `None` when not recording (the common case: zero overhead).
    fn attempt_snapshot(&mut self) -> Option<(u64, u64)> {
        if self.recorder.is_some() {
            // Drop allocation entries left over from the previous block's
            // committed attempt (committed bodies re-execute on replay).
            let _ = self.eng.take_alloc_log();
            Some((self.eng.rng_draws(), self.eng.stats.injected_faults))
        } else {
            None
        }
    }

    fn record_attempt(
        &mut self,
        rec: &mut Vec<AttemptRecord>,
        snap: Option<(u64, u64)>,
        cause: AbortCause,
        category: AbortCategory,
    ) {
        if let Some((draws0, faults0)) = snap {
            rec.push(AttemptRecord {
                cause: cause.encode(),
                category: category.index() as u8,
                faults: (self.eng.stats.injected_faults - faults0) as u32,
                draws: self.eng.rng_draws() - draws0,
                allocs: self.eng.take_alloc_log(),
            });
        }
    }

    fn record_block(&mut self, attempts: Vec<AttemptRecord>, outcome: BlockOutcome) {
        if let Some(rec) = &mut self.recorder {
            rec.push(BlockRecord { attempts, outcome });
        }
    }

    /// Replays one atomic block from the trace: re-applies the aborted
    /// attempts' bookkeeping (statistics, RNG draws, allocations) without
    /// re-executing their bodies, then executes the committing body once,
    /// serialized by the turnstile in recorded commit order.
    fn replay_block<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        let rec = self
            .replayer
            .as_mut()
            .expect("replay_block without a replayer")
            .blocks
            .pop_front()
            .expect("replay diverged: the workload produced more atomic blocks than the trace");
        for a in &rec.attempts {
            if a.cause == AbortCause::StmValidation.encode()
                || a.cause == AbortCause::SpillValidation.encode()
            {
                // Software-validated attempts bypass the hardware abort
                // categories.
                self.eng.stats.stm_validation_aborts += 1;
            } else {
                self.eng.stats.record_abort(AbortCategory::ALL[a.category as usize]);
            }
            self.eng.stats.injected_faults += a.faults as u64;
            self.eng.skip_rng_draws(a.draws);
            for &words in &a.allocs {
                let _ = self.eng.alloc_mut().alloc(words);
            }
        }
        let turnstile = self.replayer.as_ref().expect("replayer present").turnstile.clone();
        turnstile.await_turn(rec.outcome.order());
        let r = match rec.outcome {
            BlockOutcome::Hw { .. } => self.replay_committed_hw(body, false),
            BlockOutcome::Constrained { .. } => self.replay_committed_hw(body, true),
            BlockOutcome::Stm { .. } => self.replay_committed_soft(body, false),
            BlockOutcome::Rot { .. } => self.replay_committed_soft(body, true),
            BlockOutcome::Spilled { .. } => self.replay_committed_spill(body),
            BlockOutcome::Irrevocable { degraded, trip, .. } => {
                if trip {
                    self.eng.stats.watchdog_trips += 1;
                }
                if degraded {
                    self.run_degraded(body)
                } else {
                    self.run_irrevocable(body)
                }
            }
        };
        turnstile.advance();
        r
    }

    /// Executes a block recorded as a hardware commit. The turnstile
    /// serializes all replayed blocks, so the attempt cannot conflict with
    /// another transaction and commits on its recorded path; unexpected
    /// aborts (e.g. a racing non-transactional store from workload code
    /// outside any atomic block) are retried with the workload RNG restored
    /// so the body's draw stream stays identical.
    fn replay_committed_hw<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        constrained: bool,
    ) -> R {
        let mut tries = 0u32;
        loop {
            let saved_rng = self.eng.clone_workload_rng();
            let out = if constrained {
                self.attempt_constrained(body)
            } else {
                self.attempt_hw(body, false, false, false)
            };
            match out {
                Outcome::Committed(r) => return r,
                Outcome::Aborted(cause) => {
                    tries += 1;
                    assert!(
                        tries < 1024,
                        "replay diverged: a serialized attempt keeps aborting ({cause})"
                    );
                    self.eng.restore_workload_rng(saved_rng);
                }
            }
        }
    }

    /// Executes a block recorded as a software (STM or ROT) commit. The
    /// turnstile serializes replayed blocks, so validation passes and the
    /// attempt commits on its recorded path; unexpected aborts are retried
    /// with the workload RNG restored, as for hardware replays.
    fn replay_committed_soft<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        rot: bool,
    ) -> R {
        let mut tries = 0u32;
        loop {
            let saved_rng = self.eng.clone_workload_rng();
            let out = if rot { self.attempt_rot(body) } else { self.attempt_stm(body) };
            match out {
                Outcome::Committed(r) => return r,
                Outcome::Aborted(cause) => {
                    tries += 1;
                    assert!(
                        tries < 1024,
                        "replay diverged: a serialized software commit keeps aborting ({cause})"
                    );
                    self.eng.restore_workload_rng(saved_rng);
                }
            }
        }
    }

    /// Executes a block recorded as a capacity-spilled commit, with the same
    /// serialized-retry discipline as the other replay paths.
    fn replay_committed_spill<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> R {
        let mut tries = 0u32;
        loop {
            let saved_rng = self.eng.clone_workload_rng();
            match self.attempt_spill(body) {
                Outcome::Committed(r) => return r,
                Outcome::Aborted(cause) => {
                    tries += 1;
                    assert!(
                        tries < 1024,
                        "replay diverged: a serialized spill commit keeps aborting ({cause})"
                    );
                    self.eng.restore_workload_rng(saved_rng);
                }
            }
        }
    }

    /// One hardware attempt: begin, (optionally) subscribe to the lock, run
    /// the body, (lazily) subscribe, commit.
    fn attempt_hw<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        lazy_subscription: bool,
        rollback_only: bool,
        constrained: bool,
    ) -> Outcome<R> {
        self.eng.begin_hw(rollback_only, constrained);
        let lock_addr = self.lock.addr();
        let result = (|| -> TxResult<R> {
            if !lazy_subscription {
                subscribe(&mut self.eng, lock_addr)?;
            }
            let r = body(&mut Tx { eng: &mut self.eng })?;
            if lazy_subscription {
                subscribe(&mut self.eng, lock_addr)?;
            }
            Ok(r)
        })();
        match result {
            Ok(r) => {
                // Model-checker scheduling point: the body ran, the commit
                // (conflict check + write-back) has not started.
                htm_core::coop::point(htm_core::coop::CoopPoint::PreCommit);
                match self.eng.commit_hw() {
                    Ok(()) => Outcome::Committed(r),
                    Err(cause) => Outcome::Aborted(cause),
                }
            }
            Err(abort) => {
                self.eng.rollback_hw();
                Outcome::Aborted(abort.cause)
            }
        }
    }

    /// Classifies an abort into its Figure-3 category, records it, and
    /// returns the category plus whether the abort is lock-related (for the
    /// retry decision).
    fn classify_and_record(&mut self, cause: AbortCause, is_bgq: bool) -> (AbortCategory, bool) {
        let lock_held_now = self.lock.is_locked(self.eng.mem());
        let explicit_lock = cause == AbortCause::Explicit(LOCK_HELD_ABORT);
        let lock_related = explicit_lock || lock_held_now;
        let category = if is_bgq {
            AbortCategory::Unclassified
        } else if lock_related {
            AbortCategory::LockConflict
        } else if cause.is_capacity() {
            AbortCategory::Capacity
        } else if cause.is_conflict() {
            AbortCategory::DataConflict
        } else {
            AbortCategory::Other
        };
        self.eng.stats.record_abort(category);
        self.eng.record_conflict_blame(cause);
        (category, lock_related)
    }

    /// The fallback path: acquire the global lock and run irrevocably.
    ///
    /// An `Err` from the body here is a program bug (irrevocable execution
    /// cannot abort), but it must not wedge the simulation: the lock is
    /// released *before* panicking, so sibling workers — and the executor's
    /// panic recovery — are never left spinning on a dead holder.
    fn run_irrevocable<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        let cost = self.eng.machine().config().cost;
        let tag = self.thread_id() as u64 + 1;
        let waited = self.lock.acquire(self.eng.mem(), tag, self.eng.clock(), &cost);
        self.eng.stats.lock_wait_cycles += waited;
        if let Some(sync) = &self.lock_sync {
            self.eng.hb_acquire(sync);
        }
        self.eng.begin_irrevocable();
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => {
                self.eng.end_irrevocable();
                let delay = self.eng.fault_lock_release_delay();
                if delay > 0 {
                    // Injected convoy: hold the lock past the body's end.
                    self.eng.clock().tick(delay);
                }
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_release(sync);
                }
                self.lock.release(self.eng.mem(), self.eng.clock(), &cost);
                r
            }
            Err(abort) => {
                self.eng.abandon_irrevocable();
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_release(sync);
                }
                self.lock.release(self.eng.mem(), self.eng.clock(), &cost);
                panic!("irrevocable execution cannot abort (body returned {abort})");
            }
        }
    }

    // ------------------------------------------------------------------
    // Hybrid-TM fallback tiers (htm-hytm)
    // ------------------------------------------------------------------

    /// Runs the fallback tier after the retry counters are exhausted,
    /// according to the configured [`FallbackPolicy`].
    fn run_fallback<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        rec_attempts: Vec<AttemptRecord>,
    ) -> R {
        match self.effective_fallback() {
            FallbackPolicy::Stm => self.run_stm_block(body, rec_attempts),
            FallbackPolicy::Rot => self.run_rot_block(body, rec_attempts),
            // The adaptive path dispatches tiers itself and never reaches
            // this point; a direct caller gets the software tier, whose
            // bounded retries still end at the irrevocable path.
            FallbackPolicy::Adaptive => self.run_stm_block(body, rec_attempts),
            FallbackPolicy::Lock => {
                let r = self.run_irrevocable(body);
                self.record_block(
                    rec_attempts,
                    BlockOutcome::Irrevocable {
                        order: self.eng.last_commit_seq(),
                        degraded: false,
                        trip: false,
                    },
                );
                r
            }
        }
    }

    /// NOrec-style software fallback: the body runs instrumented (buffered
    /// writes, value-logged reads), and commits under a brief critical
    /// section on the global lock. Concurrent hardware transactions stay
    /// live the whole time — the lock acquisition at commit dooms the
    /// subscribed ones, exactly as an irrevocable section would, but only
    /// for the duration of validation plus write-back.
    ///
    /// A validation failure costs one software attempt; after
    /// [`STM_COMMIT_RETRIES`] of those the block degrades to the
    /// irrevocable path, so progress is never worse than the lock fallback.
    fn run_stm_block<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        mut rec_attempts: Vec<AttemptRecord>,
    ) -> R {
        let mut stm_retries = STM_COMMIT_RETRIES;
        loop {
            let waited = {
                let cost = self.eng.machine().config().cost;
                self.lock.wait_released(self.eng.mem(), self.eng.clock(), &cost)
            };
            self.eng.stats.lock_wait_cycles += waited;
            let snap = self.attempt_snapshot();
            match self.attempt_stm(body) {
                Outcome::Committed(r) => {
                    self.record_block(
                        rec_attempts,
                        BlockOutcome::Stm { order: self.eng.last_commit_seq() },
                    );
                    return r;
                }
                Outcome::Aborted(_) => {
                    // Every software abort surfaces as a validation failure
                    // (the cause is uniform regardless of what invalidated
                    // the read log), counted separately from the hardware
                    // abort categories. Recording the uniform cause lets
                    // replay re-apply the same counter.
                    self.eng.stats.stm_validation_aborts += 1;
                    self.record_attempt(
                        &mut rec_attempts,
                        snap,
                        AbortCause::StmValidation,
                        AbortCategory::Other,
                    );
                    if !consume(&mut stm_retries) {
                        let r = self.run_irrevocable(body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: false,
                                trip: false,
                            },
                        );
                        return r;
                    }
                    let pause = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..256u64);
                    self.tick(pause);
                }
            }
        }
    }

    /// One software attempt: instrumented execution, then commit under the
    /// sequence lock.
    fn attempt_stm<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> Outcome<R> {
        self.eng.begin_soft();
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => {
                htm_core::coop::point(htm_core::coop::CoopPoint::PreCommit);
                match self.commit_stm() {
                    Ok(()) => Outcome::Committed(r),
                    Err(cause) => Outcome::Aborted(cause),
                }
            }
            Err(abort) => {
                self.eng.rollback_soft();
                Outcome::Aborted(abort.cause)
            }
        }
    }

    /// The software-commit critical section: acquire the global lock (the
    /// NOrec sequence lock — this dooms subscribed hardware transactions),
    /// wait out hardware commits already past their subscription check, then
    /// validate and write back. Read-only transactions take the lock too:
    /// their commit point must be ordered against every other commit for the
    /// serializability certifier.
    fn commit_stm(&mut self) -> Result<(), AbortCause> {
        let cost = self.eng.machine().config().cost;
        let tag = self.thread_id() as u64 + 1;
        let waited = self.lock.acquire(self.eng.mem(), tag, self.eng.clock(), &cost);
        self.eng.stats.lock_wait_cycles += waited;
        if waited > 0 {
            self.eng.stats.fallback_lock_waits += 1;
        }
        if let Some(sync) = &self.lock_sync {
            self.eng.hb_acquire(sync);
        }
        self.eng.quiesce_committers(false);
        let r = self.eng.soft_commit_validated();
        let delay = self.eng.fault_lock_release_delay();
        if delay > 0 {
            self.eng.clock().tick(delay);
        }
        if let Some(sync) = &self.lock_sync {
            self.eng.hb_release(sync);
        }
        self.lock.release(self.eng.mem(), self.eng.clock(), &cost);
        r
    }

    /// POWER8 rollback-only fallback tier: stores go through the TMCAM
    /// (hardware write buffering, writes-only capacity), loads are untracked
    /// and value-logged in software. The commit validates the read log under
    /// the global lock — rollback-only transactions detect no load
    /// conflicts, so software validation stands in, NOrec-style. ROT
    /// attempts do *not* subscribe to the lock: their own commit-time lock
    /// acquisition would doom them.
    fn run_rot_block<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        mut rec_attempts: Vec<AttemptRecord>,
    ) -> R {
        let mut rot_retries = ROT_RETRIES;
        loop {
            let waited = {
                let cost = self.eng.machine().config().cost;
                self.lock.wait_released(self.eng.mem(), self.eng.clock(), &cost)
            };
            self.eng.stats.lock_wait_cycles += waited;
            let snap = self.attempt_snapshot();
            match self.attempt_rot(body) {
                Outcome::Committed(r) => {
                    self.record_block(
                        rec_attempts,
                        BlockOutcome::Rot { order: self.eng.last_commit_seq() },
                    );
                    return r;
                }
                Outcome::Aborted(cause) => {
                    let category = if cause == AbortCause::StmValidation {
                        self.eng.stats.stm_validation_aborts += 1;
                        AbortCategory::Other
                    } else {
                        self.classify_and_record(cause, false).0
                    };
                    self.record_attempt(&mut rec_attempts, snap, cause, category);
                    if !consume(&mut rot_retries) {
                        let r = self.run_irrevocable(body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: false,
                                trip: false,
                            },
                        );
                        return r;
                    }
                    let pause = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..256u64);
                    self.tick(pause);
                }
            }
        }
    }

    /// One rollback-only attempt: hardware-buffered stores, value-logged
    /// loads, commit under the lock after software validation. The commit
    /// excludes this engine's own slot from the committer quiesce — it *is*
    /// mid-commit.
    fn attempt_rot<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> Outcome<R> {
        self.eng.begin_rot();
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => {
                htm_core::coop::point(htm_core::coop::CoopPoint::PreCommit);
                let cost = self.eng.machine().config().cost;
                let tag = self.thread_id() as u64 + 1;
                let waited = self.lock.acquire(self.eng.mem(), tag, self.eng.clock(), &cost);
                self.eng.stats.lock_wait_cycles += waited;
                if waited > 0 {
                    self.eng.stats.fallback_lock_waits += 1;
                }
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_acquire(sync);
                }
                self.eng.quiesce_committers(true);
                let committed = self.eng.rot_commit_under_lock();
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_release(sync);
                }
                self.lock.release(self.eng.mem(), self.eng.clock(), &cost);
                match committed {
                    Ok(()) => Outcome::Committed(r),
                    Err(cause) => Outcome::Aborted(cause),
                }
            }
            Err(abort) => {
                self.eng.rollback_hw();
                Outcome::Aborted(abort.cause)
            }
        }
    }

    // ------------------------------------------------------------------
    // Adaptive contention manager (htm-adapt)
    // ------------------------------------------------------------------

    /// Executes one atomic block under the adaptive contention manager: the
    /// controller picks the execution tier, the block runs on it (escalating
    /// within the block only toward stronger tiers), and the block's abort
    /// mix is fed back as observations at the block boundary.
    fn atomic_adaptive<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        let tier = self.adapt.as_ref().map_or(Tier::Hw, |a| a.block_tier());
        let aborts0 = self.eng.stats.aborts;
        let validation0 = self.eng.stats.stm_validation_aborts;
        let stm0 = self.eng.stats.stm_commits;
        let irrevocable0 = self.eng.stats.irrevocable_commits;
        let r = match tier {
            Tier::Hw => self.run_adaptive_hw(body, false),
            Tier::Spill => self.run_adaptive_hw(body, true),
            Tier::Rot => self.run_rot_block(body, Vec::new()),
            Tier::Stm => self.run_stm_block(body, Vec::new()),
            Tier::Lock => {
                let r = self.run_irrevocable(body);
                self.record_block(
                    Vec::new(),
                    BlockOutcome::Irrevocable {
                        order: self.eng.last_commit_seq(),
                        degraded: false,
                        trip: false,
                    },
                );
                r
            }
        };
        if let Some(adapt) = &mut self.adapt {
            let aborts = self.eng.stats.aborts;
            for (i, cat) in AbortCategory::ALL.iter().enumerate() {
                for _ in aborts0[i]..aborts[i] {
                    adapt.observe_abort(AdaptSignal::from_category(*cat));
                }
            }
            // Software validation failures are conflicts by construction:
            // a concurrent committer invalidated the read log.
            for _ in validation0..self.eng.stats.stm_validation_aborts {
                adapt.observe_abort(AdaptSignal::Conflict);
            }
            // Did the block drain through its escape hatch? Hardware-class
            // tiers fall back when the block committed in STM or
            // irrevocably (a spilled commit from the Hw tier is still
            // partial-hardware, not a fallback); the STM tier falls back
            // only on irrevocability.
            let fell_back = match tier {
                Tier::Hw | Tier::Spill | Tier::Rot => {
                    self.eng.stats.stm_commits > stm0
                        || self.eng.stats.irrevocable_commits > irrevocable0
                }
                Tier::Stm => self.eng.stats.irrevocable_commits > irrevocable0,
                Tier::Lock => false,
            };
            adapt.block_done(fell_back);
            let switches = adapt.tier_switches();
            self.eng.stats.tier_switches += switches - self.adapt_switches_seen;
            self.adapt_switches_seen = switches;
        }
        r
    }

    /// The adaptive hardware tier: the Figure-1 retry loop under the
    /// contention manager's *capped* randomized backoff. `spill` starts
    /// attempts in capacity-spill mode (POWER8); a capacity abort of a plain
    /// hardware attempt escalates to spill mode mid-block when the platform
    /// supports it, so a capacity-doomed block degrades to partial-hardware
    /// execution instead of burning its remaining retries on a footprint
    /// that can never fit.
    fn run_adaptive_hw<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        mut spill: bool,
    ) -> R {
        let cfg = self.eng.machine().config();
        let has_spill = cfg.has_suspend_resume;
        let reports_persistence = cfg.reports_persistence;
        let mut lock_retries = self.policy.lock_retries;
        let mut persistent_retries = self.policy.persistent_retries;
        let mut transient_retries = self.policy.transient_retries;
        let mut attempt = 0u32;
        let mut rec_attempts: Vec<AttemptRecord> = Vec::new();
        loop {
            let waited = {
                let cost = self.eng.machine().config().cost;
                self.lock.wait_released(self.eng.mem(), self.eng.clock(), &cost)
            };
            self.eng.stats.lock_wait_cycles += waited;
            if waited > 0 {
                let jitter = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..512u64);
                self.tick(jitter);
            }
            let snap = self.attempt_snapshot();
            let out = if spill {
                self.attempt_spill(body)
            } else {
                self.attempt_hw(body, false, false, false)
            };
            match out {
                Outcome::Committed(r) => {
                    let order = self.eng.last_commit_seq();
                    let outcome = if spill {
                        BlockOutcome::Spilled { order }
                    } else {
                        BlockOutcome::Hw { order }
                    };
                    self.record_block(rec_attempts, outcome);
                    return r;
                }
                Outcome::Aborted(cause) => {
                    let (category, lock_related) = if cause == AbortCause::SpillValidation {
                        self.eng.stats.stm_validation_aborts += 1;
                        (AbortCategory::Other, false)
                    } else {
                        self.classify_and_record(cause, false)
                    };
                    self.record_attempt(&mut rec_attempts, snap, cause, category);
                    if !spill && has_spill && cause.is_capacity() {
                        spill = true;
                    }
                    let retry = if lock_related {
                        consume(&mut lock_retries)
                    } else if reports_persistence && cause.is_capacity() {
                        consume(&mut persistent_retries)
                    } else {
                        consume(&mut transient_retries)
                    };
                    if !retry {
                        // Within-block escalation always lands on a
                        // terminating software tier.
                        return self.run_stm_block(body, rec_attempts);
                    }
                    // Backoff de-synchronizes *contending* threads; an
                    // injected fault or a capacity overflow is not
                    // contention, and pausing for it only burns cycles.
                    // Unclassified aborts (Blue Gene/Q hides causes) get
                    // the pause too — contention cannot be ruled out.
                    let contention = lock_related
                        || matches!(
                            category,
                            AbortCategory::DataConflict | AbortCategory::Unclassified
                        );
                    attempt += 1;
                    if self.watchdog.starved(attempt) {
                        self.eng.stats.adapt_starvation_rescues += 1;
                        if let Some(adapt) = &mut self.adapt {
                            adapt.starvation_rescue();
                        }
                        let r = self.watchdog_trip(body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: true,
                                trip: true,
                            },
                        );
                        return r;
                    }
                    if contention {
                        let ceiling = AdaptiveController::backoff_ceiling(attempt, self.trip_shift);
                        let pause = rand::Rng::gen_range(self.eng.sched_rng_mut(), 0..ceiling);
                        self.eng.stats.backoff_cycles += pause;
                        self.tick(pause);
                    }
                }
            }
        }
    }

    /// One capacity-spilling attempt (POWER8): a hardware transaction whose
    /// TMCAM-overflow lines spill into a software-validated side log instead
    /// of aborting. Spill attempts do *not* subscribe to the lock — like
    /// ROT, their own commit-time acquisition would doom them; the side log
    /// is validated under the lock instead.
    fn attempt_spill<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> Outcome<R> {
        self.eng.begin_spill();
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => {
                htm_core::coop::point(htm_core::coop::CoopPoint::PreCommit);
                let cost = self.eng.machine().config().cost;
                let tag = self.thread_id() as u64 + 1;
                let waited = self.lock.acquire(self.eng.mem(), tag, self.eng.clock(), &cost);
                self.eng.stats.lock_wait_cycles += waited;
                if waited > 0 {
                    self.eng.stats.fallback_lock_waits += 1;
                }
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_acquire(sync);
                }
                self.eng.quiesce_committers(true);
                let committed = self.eng.spill_commit_under_lock();
                if let Some(sync) = &self.lock_sync {
                    self.eng.hb_release(sync);
                }
                self.lock.release(self.eng.mem(), self.eng.clock(), &cost);
                match committed {
                    Ok(()) => Outcome::Committed(r),
                    Err(cause) => Outcome::Aborted(cause),
                }
            }
            Err(abort) => {
                self.eng.rollback_hw();
                Outcome::Aborted(abort.cause)
            }
        }
    }

    /// A watchdog trip: record it, escalate backoff, enter degraded mode and
    /// run the starved block irrevocably.
    fn watchdog_trip<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        self.eng.stats.watchdog_trips += 1;
        self.trip_shift = (self.trip_shift + 1).min(self.watchdog.escalation_cap);
        self.degraded_left = self.watchdog.degraded_blocks;
        self.run_degraded(body)
    }

    /// Runs one block in degraded mode (irrevocably), accounting the time
    /// and the commit to the degradation counters.
    fn run_degraded<R>(&mut self, body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        let start = self.eng.clock().now();
        let r = self.run_irrevocable(body);
        self.eng.stats.degraded_cycles += self.eng.clock().now() - start;
        self.eng.stats.degraded_commits += 1;
        r
    }

    /// Rolls back any in-flight transaction and force-releases the global
    /// lock if this thread holds it. Called by the executor after a worker
    /// panic so surviving workers cannot hang on state the dead thread left
    /// behind.
    pub(crate) fn panic_cleanup(&mut self) {
        self.eng.panic_cleanup();
        let cost = self.eng.machine().config().cost;
        let tag = self.thread_id() as u64 + 1;
        self.lock.force_release_if_held_by(self.eng.mem(), tag, self.eng.clock(), &cost);
    }

    // ------------------------------------------------------------------
    // Processor-specific interfaces (Section 6)
    // ------------------------------------------------------------------

    /// Intel hardware lock elision: one hardware attempt with the lock
    /// elided; on abort the lock is actually acquired — there is no
    /// software retry mechanism to tune (Section 6.2).
    ///
    /// # Panics
    ///
    /// Panics on platforms without HLE.
    pub fn atomic_hle<R>(&mut self, mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        assert!(
            self.eng.machine().config().has_hle,
            "{} has no hardware lock elision",
            self.eng.machine().config().name
        );
        if self.eng.mode() == ExecMode::Sequential {
            return self.atomic(body);
        }
        if self.replayer.is_some() {
            return self.replay_block(&mut body);
        }
        if self.degraded_left > 0 {
            self.degraded_left -= 1;
            let r = self.run_degraded(&mut body);
            self.record_block(
                Vec::new(),
                BlockOutcome::Irrevocable {
                    order: self.eng.last_commit_seq(),
                    degraded: true,
                    trip: false,
                },
            );
            return r;
        }
        // Lock-busy aborts re-elide after the lock frees (as the standard
        // elision runtimes do); only a *data* abort re-executes with the
        // lock held. Without this, one fallback dooms every elided peer,
        // whose fallbacks doom the next wave — a permanent convoy.
        let mut attempts = 0u32;
        let mut rec_attempts: Vec<AttemptRecord> = Vec::new();
        loop {
            let cost = self.eng.machine().config().cost;
            let waited = self.lock.wait_released(self.eng.mem(), self.eng.clock(), &cost);
            self.eng.stats.lock_wait_cycles += waited;
            let snap = self.attempt_snapshot();
            match self.attempt_hw(&mut body, false, false, false) {
                Outcome::Committed(r) => {
                    self.record_block(
                        rec_attempts,
                        BlockOutcome::Hw { order: self.eng.last_commit_seq() },
                    );
                    return r;
                }
                Outcome::Aborted(cause) => {
                    let (category, lock_related) = self.classify_and_record(cause, false);
                    self.record_attempt(&mut rec_attempts, snap, cause, category);
                    // Non-transactional conflicts come from a peer's
                    // irrevocable section (the convoy), not from program
                    // data: re-elide those too.
                    if !lock_related && cause != AbortCause::ConflictNonTx {
                        let r = self.run_irrevocable(&mut body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: false,
                                trip: false,
                            },
                        );
                        return r;
                    }
                    attempts += 1;
                    if self.watchdog.starved(attempts) {
                        // The re-elide loop has no retry counter of its own,
                        // so under an injected abort storm the watchdog is
                        // its only exit.
                        let r = self.watchdog_trip(&mut body);
                        self.record_block(
                            rec_attempts,
                            BlockOutcome::Irrevocable {
                                order: self.eng.last_commit_seq(),
                                degraded: true,
                                trip: true,
                            },
                        );
                        return r;
                    }
                }
            }
        }
    }

    /// zEC12 constrained transaction: guaranteed to eventually commit, no
    /// abort handler or fallback needed (Section 6.1). The body must respect
    /// the constrained limits (≤ 256 B footprint, ≤ 32 accesses) or the
    /// engine panics, mirroring the architecture's constraint checks.
    ///
    /// The hardware guarantee is modelled as bounded retries followed by
    /// acquisition of a hidden arbitration token that serialises the
    /// stragglers (standing in for the processor's internal fairness
    /// escalation).
    ///
    /// # Panics
    ///
    /// Panics on platforms without constrained transactions, or if the body
    /// violates the constrained limits.
    pub fn atomic_constrained<R>(&mut self, mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        assert!(
            self.eng.machine().config().constrained.is_some(),
            "{} has no constrained transactions",
            self.eng.machine().config().name
        );
        if self.eng.mode() == ExecMode::Sequential {
            return self.atomic(body);
        }
        if self.replayer.is_some() {
            return self.replay_block(&mut body);
        }
        let mut attempts = 0u32;
        let mut rec_attempts: Vec<AttemptRecord> = Vec::new();
        loop {
            let escalated = attempts >= 4;
            let _token = escalated.then(|| self.constrained_arbiter.clone());
            // A panicked peer may have poisoned the arbiter; the token is
            // just a serialization point, so the poison carries no meaning
            // and is safely discarded.
            let _guard = _token.as_ref().map(|t| t.lock().unwrap_or_else(|p| p.into_inner()));
            let snap = self.attempt_snapshot();
            match self.attempt_constrained(&mut body) {
                Outcome::Committed(r) => {
                    self.record_block(
                        rec_attempts,
                        BlockOutcome::Constrained { order: self.eng.last_commit_seq() },
                    );
                    return r;
                }
                Outcome::Aborted(cause) => {
                    let (category, _) = self.classify_and_record(cause, false);
                    self.record_attempt(&mut rec_attempts, snap, cause, category);
                    attempts += 1;
                    if self.watchdog.starved(attempts) && attempts == self.watchdog.starvation_bound
                    {
                        // Constrained transactions have no fallback to
                        // degrade to (the architecture forbids one); record
                        // the starvation so diagnostics can see it even
                        // though the loop must keep going.
                        self.eng.stats.watchdog_trips += 1;
                    }
                    // Hardware-style exponential backoff.
                    let cost = self.eng.machine().config().cost;
                    self.eng.clock().tick(cost.spin_poll << attempts.min(5));
                }
            }
        }
    }

    fn attempt_constrained<R>(
        &mut self,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> Outcome<R> {
        self.eng.begin_hw(false, true);
        let result = body(&mut Tx { eng: &mut self.eng });
        match result {
            Ok(r) => match self.eng.commit_hw() {
                Ok(()) => Outcome::Committed(r),
                Err(cause) => Outcome::Aborted(cause),
            },
            Err(abort) => {
                self.eng.rollback_hw();
                Outcome::Aborted(abort.cause)
            }
        }
    }

    /// POWER8 rollback-only transaction: store buffering without load
    /// conflict detection (Section 2.4). Returns `None` if the speculation
    /// aborted (the caller re-executes non-speculatively).
    ///
    /// # Panics
    ///
    /// Panics on platforms without rollback-only transactions.
    pub fn try_rollback_only<R>(
        &mut self,
        mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> Option<R> {
        if self.eng.mode() == ExecMode::Sequential {
            return Some(self.atomic(body));
        }
        assert!(
            !self.eng.is_record_or_replay(),
            "record/replay does not support rollback-only transactions \
             (their untracked loads cannot be certified or re-ordered)"
        );
        self.eng.begin_hw(true, false);
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => match self.eng.commit_hw() {
                Ok(()) => Some(r),
                Err(cause) => {
                    self.classify_and_record(cause, false);
                    None
                }
            },
            Err(abort) => {
                self.eng.rollback_hw();
                self.classify_and_record(abort.cause, false);
                None
            }
        }
    }

    /// Runs `body` as a *single* hardware attempt with explicit outcome,
    /// without lock subscription or fallback. Building block for ordered
    /// TLS (Section 6.3), where the caller manages retries.
    ///
    /// # Errors
    ///
    /// Returns the abort that ended the attempt.
    pub fn try_hardware<R>(
        &mut self,
        mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> Result<R, Abort> {
        if self.eng.mode() == ExecMode::Sequential {
            return Ok(self.atomic(body));
        }
        assert!(
            !self.eng.is_record_or_replay(),
            "record/replay does not support bare hardware attempts \
             (caller-managed retries are not captured in the trace)"
        );
        self.eng.begin_hw(false, false);
        match body(&mut Tx { eng: &mut self.eng }) {
            Ok(r) => match self.eng.commit_hw() {
                Ok(()) => Ok(r),
                Err(cause) => {
                    self.classify_and_record(cause, false);
                    Err(Abort::new(cause))
                }
            },
            Err(abort) => {
                self.eng.rollback_hw();
                self.classify_and_record(abort.cause, false);
                Err(abort)
            }
        }
    }
}

/// Subscribes the running transaction to the global lock word: reads it
/// transactionally and explicitly aborts if it is held (Figure 1 lines
/// 26–27).
fn subscribe(eng: &mut TxnEngine, lock_addr: WordAddr) -> TxResult<()> {
    let v = eng.load(lock_addr)?;
    if v != 0 {
        return eng.user_abort(LOCK_HELD_ABORT);
    }
    Ok(())
}

/// Builds the adaptive controller for [`FallbackPolicy::Adaptive`] (`None`
/// for every other policy). The tier ladder is shaped by the platform:
/// rollback-only transactions gate the ROT rung and suspend/resume gates
/// capacity spilling.
fn make_adapt(eng: &TxnEngine, fallback: FallbackPolicy) -> Option<AdaptiveController> {
    (fallback == FallbackPolicy::Adaptive).then(|| {
        let cfg = eng.machine().config();
        AdaptiveController::new(cfg.has_rollback_only, cfg.has_suspend_resume)
    })
}

fn consume(counter: &mut u32) -> bool {
    if *counter > 0 {
        *counter -= 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgq_adapt_suppresses_after_heavy_fallback() {
        let mut a = BgqAdapt::default();
        assert!(!a.suppress_retries(), "cold start allows retries");
        for _ in 0..8 {
            a.record(true);
        }
        assert!(a.suppress_retries());
        for _ in 0..32 {
            a.record(false);
        }
        assert!(!a.suppress_retries(), "recovers after successes");
    }

    #[test]
    fn retry_policy_uniform() {
        let p = RetryPolicy::uniform(3);
        assert_eq!(p.lock_retries, 3);
        assert_eq!(p.persistent_retries, 3);
        assert_eq!(p.transient_retries, 3);
        assert_eq!(p.bgq_retries, 3);
    }

    #[test]
    fn watchdog_defaults_never_trip_default_policies() {
        let w = WatchdogConfig::default();
        let p = RetryPolicy::default();
        // The most attempts a default-policy block can make before the
        // fallback: one per retry across all three counters.
        let max_attempts = p.lock_retries + p.persistent_retries + p.transient_retries;
        assert!(!w.starved(max_attempts), "default watchdog must not alter default runs");
        assert!(w.starved(w.starvation_bound));
        assert!(!WatchdogConfig::disabled().starved(u32::MAX));
    }

    #[test]
    fn consume_counts_down() {
        let mut c = 2;
        assert!(consume(&mut c));
        assert!(consume(&mut c));
        assert!(!consume(&mut c));
        assert!(!consume(&mut c));
    }
}
