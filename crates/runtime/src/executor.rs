//! Experiment executor: builds a simulation instance and runs workloads
//! sequentially or across worker threads.
//!
//! The measurement protocol mirrors the paper's: for each (platform ×
//! benchmark × thread count), the workload runs once sequentially (the
//! speed-up baseline) and once with N workers under the retry mechanism;
//! speed-up = sequential cycles / max worker cycles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use htm_core::{
    check_opacity, detect_races, panic_message, AbortedAttempt, ConflictPolicy, Geometry, Segment,
    SimAlloc, SimError, SimResult, SyncClock, ThreadAlloc, TxEvent, TxMemory, WordAddr,
};
use htm_hytm::FallbackPolicy;
use htm_machine::{Machine, MachineConfig};

use crate::ctx::{RetryPolicy, ThreadCtx, WatchdogConfig};
use crate::faults::{FaultPlan, FaultState};
use crate::lock::GlobalLock;
use crate::replay::{BlockRecord, ScheduleTrace, Turnstile};
use crate::stats::{RunStats, ThreadStats};
use crate::trace::SeqTracer;
use crate::tx::{ExecMode, TxnEngine};

/// Configuration of one simulation instance.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The platform model.
    pub machine: MachineConfig,
    /// Size of the simulated memory in 64-bit words.
    pub mem_words: u32,
    /// Conflict-resolution policy (requester-wins unless ablating).
    pub conflict_policy: ConflictPolicy,
    /// Base seed for the per-thread deterministic RNGs.
    pub seed: u64,
    /// Record per-transaction footprints in run statistics (costs memory).
    pub trace_footprints: bool,
    /// Yield the OS thread every this many *simulated cycles* (0 = never).
    /// Hardware threads progress simultaneously; on hosts with fewer cores
    /// than workers, OS threads only interleave at preemption quanta — far
    /// coarser than a transaction — so without forced yields transactions
    /// would almost never overlap and conflict statistics would collapse.
    /// Pacing by simulated cycles makes each worker's real-time presence
    /// proportional to its simulated duration, so conflict exposure tracks
    /// the cost model.
    pub yield_interval: u32,
    /// Deterministic fault-injection plan (empty by default: injects
    /// nothing, costs nothing, leaves runs bit-identical).
    pub faults: FaultPlan,
    /// Livelock-watchdog configuration (the default never fires under the
    /// default retry policies; see [`WatchdogConfig`]).
    pub watchdog: WatchdogConfig,
    /// What runs when the retry counters are exhausted: the global lock
    /// (irrevocable execution, the paper's mechanism), a NOrec-style
    /// software transaction, or a POWER8 rollback-only transaction with
    /// software-validated loads. See [`FallbackPolicy`].
    pub fallback: FallbackPolicy,
    /// Run the online correctness certifier: committed atomic blocks record
    /// their read/write sets and commit order, and each parallel run's
    /// [`RunStats`] carries a [`CertifyReport`](htm_core::CertifyReport)
    /// checking conflict-serializability and read freshness.
    pub certify: bool,
    /// Run the happens-before race sanitizer: every thread captures its
    /// accesses into vector-clocked segments, conflict aborts are
    /// attributed to their aggressor, and each parallel run's [`RunStats`]
    /// carries a [`RaceReport`](htm_core::RaceReport).
    pub sanitize: bool,
    /// Known initial memory image for the opacity check (addresses written
    /// by setup phases before the certified window). Addresses absent here
    /// are treated conservatively (any pre-first-write value passes); the
    /// model checker supplies its kernels' full working set so torn reads
    /// of initial values are caught too. Only consulted when `certify` is
    /// on.
    pub certify_init: Vec<(WordAddr, u64)>,
}

impl SimConfig {
    /// A configuration with workspace defaults (32 MiB simulated memory).
    pub fn new(machine: MachineConfig) -> SimConfig {
        SimConfig {
            machine,
            mem_words: 1 << 22,
            conflict_policy: ConflictPolicy::RequesterWins,
            seed: 0x5EED_0001,
            trace_footprints: false,
            yield_interval: 160,
            faults: FaultPlan::none(),
            watchdog: WatchdogConfig::default(),
            fallback: FallbackPolicy::Lock,
            certify: false,
            sanitize: false,
            certify_init: Vec::new(),
        }
    }

    /// Sets the simulated memory size in words.
    pub fn mem_words(mut self, words: u32) -> SimConfig {
        self.mem_words = words;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the conflict-resolution policy.
    pub fn conflict_policy(mut self, p: ConflictPolicy) -> SimConfig {
        self.conflict_policy = p;
        self
    }

    /// Enables footprint tracing in worker statistics.
    pub fn trace_footprints(mut self, on: bool) -> SimConfig {
        self.trace_footprints = on;
        self
    }

    /// Sets the forced-yield interval (see [`SimConfig::yield_interval`]).
    pub fn yield_interval(mut self, every_accesses: u32) -> SimConfig {
        self.yield_interval = every_accesses;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> SimConfig {
        self.faults = plan;
        self
    }

    /// Sets the livelock-watchdog configuration.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> SimConfig {
        self.watchdog = watchdog;
        self
    }

    /// Sets the fallback policy (see [`SimConfig::fallback`]).
    pub fn fallback(mut self, fallback: FallbackPolicy) -> SimConfig {
        self.fallback = fallback;
        self
    }

    /// Enables the online correctness certifier (see [`SimConfig::certify`]).
    pub fn certify(mut self, on: bool) -> SimConfig {
        self.certify = on;
        self
    }

    /// Enables the happens-before race sanitizer (see
    /// [`SimConfig::sanitize`]).
    pub fn sanitize(mut self, on: bool) -> SimConfig {
        self.sanitize = on;
        self
    }

    /// Declares known initial memory values for the opacity check (see
    /// [`SimConfig::certify_init`]).
    pub fn certify_init(mut self, init: Vec<(WordAddr, u64)>) -> SimConfig {
        self.certify_init = init;
        self
    }
}

/// How a parallel run executes: normally, recording a schedule trace, or
/// replaying one.
#[derive(Clone, Copy)]
enum RunMode<'t> {
    Normal,
    Record,
    Replay(&'t ScheduleTrace),
}

/// What one worker thread hands back to the executor.
struct WorkerOut {
    stats: ThreadStats,
    cert: Option<(Vec<TxEvent>, Vec<AbortedAttempt>, bool)>,
    hb: Option<(Vec<Segment>, bool)>,
    recording: Vec<BlockRecord>,
    replay_leftover: usize,
}

/// One simulation instance: memory + platform + allocator + global lock.
///
/// Benchmarks build their data structures through [`Sim::seq_ctx`] (or an
/// initial parallel phase) and then run measurement phases with
/// [`Sim::run_parallel`].
pub struct Sim {
    mem: Arc<TxMemory>,
    machine: Arc<Machine>,
    alloc: Arc<SimAlloc>,
    lock: GlobalLock,
    cfg: SimConfig,
    constrained_arbiter: Arc<Mutex<()>>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("machine", &self.machine.config().name)
            .field("mem_words", &self.cfg.mem_words)
            .finish()
    }
}

impl Sim {
    /// Builds a simulation instance, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the fault plan contains a
    /// probability outside `[0, 1]`.
    pub fn try_new(cfg: SimConfig) -> SimResult<Sim> {
        cfg.faults.validate()?;
        let geometry = Geometry::new(cfg.machine.granularity);
        let mem = Arc::new(TxMemory::new(cfg.mem_words, geometry));
        let machine = Arc::new(Machine::new(cfg.machine.clone()));
        if cfg.faults.spec_id_drain > 0 {
            if let Some(pool) = machine.spec_ids() {
                pool.drain(cfg.faults.spec_id_drain);
            }
        }
        let alloc = Arc::new(SimAlloc::new(1, cfg.mem_words));
        let lock = GlobalLock::new(&alloc, cfg.machine.granularity);
        Ok(Sim { mem, machine, alloc, lock, cfg, constrained_arbiter: Arc::new(Mutex::new(())) })
    }

    /// Builds a simulation instance.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`Sim::try_new`] where the
    /// caller wants to handle that as an error.
    pub fn new(cfg: SimConfig) -> Sim {
        Sim::try_new(cfg).unwrap_or_else(|e| panic!("Sim::new: {e}"))
    }

    /// Convenience: a simulation of `machine` with default settings.
    pub fn of(machine: MachineConfig) -> Sim {
        Sim::new(SimConfig::new(machine))
    }

    /// The simulated memory.
    pub fn mem(&self) -> &Arc<TxMemory> {
        &self.mem
    }

    /// The global allocator.
    pub fn alloc(&self) -> &Arc<SimAlloc> {
        &self.alloc
    }

    /// The platform model.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The global fallback lock.
    pub fn lock(&self) -> GlobalLock {
        self.lock
    }

    /// Reads a word of simulated memory (setup/verification).
    pub fn read_word(&self, addr: WordAddr) -> u64 {
        self.mem.read_word(addr)
    }

    /// Writes a word of simulated memory (setup/verification).
    pub fn write_word(&self, addr: WordAddr, value: u64) {
        self.mem.write_word(addr, value)
    }

    fn make_ctx(
        &self,
        thread_id: u32,
        num_threads: u32,
        mode: ExecMode,
        policy: RetryPolicy,
        inject_faults: bool,
    ) -> ThreadCtx {
        // The sequential baseline is never fault-injected: it defines
        // correct output and the speed-up denominator. Replay strips faults
        // too — the recorded abort stream already contains their effects.
        let faults = if mode == ExecMode::Hardware && inject_faults {
            FaultState::new(&self.cfg.faults, thread_id)
        } else {
            None
        };
        let eng = TxnEngine::new(
            Arc::clone(&self.mem),
            Arc::clone(&self.machine),
            ThreadAlloc::new(Arc::clone(&self.alloc)),
            thread_id,
            num_threads,
            mode,
            self.cfg.conflict_policy,
            self.cfg.seed,
            self.cfg.trace_footprints,
            if mode == ExecMode::Hardware && num_threads > 1 { self.cfg.yield_interval } else { 0 },
            faults,
        );
        ThreadCtx::new(
            eng,
            self.lock,
            policy,
            self.cfg.fallback,
            Arc::clone(&self.constrained_arbiter),
            self.cfg.watchdog,
        )
    }

    /// A sequential-mode context on the calling thread (baseline runs and
    /// setup phases). Its `atomic` runs bodies directly with no
    /// transactional overhead.
    pub fn seq_ctx(&self) -> ThreadCtx {
        self.make_ctx(0, 1, ExecMode::Sequential, RetryPolicy::default(), false)
    }

    /// A sequential context that records per-block footprints at the given
    /// line granularities (the Figure 10/11 trace tool).
    pub fn seq_ctx_traced(&self, granularities: &[u32]) -> ThreadCtx {
        let mut ctx = self.seq_ctx();
        ctx.engine_mut().tracer = Some(SeqTracer::new(granularities));
        ctx
    }

    /// Like [`Sim::seq_ctx_traced`], but the tracer also keeps each
    /// block's distinct line IDs ([`SeqTracer::line_sets`]) for static
    /// capacity prediction.
    pub fn seq_ctx_traced_sets(&self, granularities: &[u32]) -> ThreadCtx {
        let mut ctx = self.seq_ctx();
        ctx.engine_mut().tracer = Some(SeqTracer::new(granularities).keep_line_sets());
        ctx
    }

    /// Takes the footprint tracer out of a traced context after the run, or
    /// `None` if the context was not created with [`Sim::seq_ctx_traced`]
    /// (or the tracer was already taken).
    pub fn try_take_tracer(&self, ctx: &mut ThreadCtx) -> Option<SeqTracer> {
        ctx.engine_mut().tracer.take()
    }

    /// Takes the footprint tracer out of a traced context after the run.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was not created with [`Sim::seq_ctx_traced`].
    pub fn take_tracer(&self, ctx: &mut ThreadCtx) -> SeqTracer {
        self.try_take_tracer(ctx).expect("context has no tracer")
    }

    /// FNV-1a digest of the simulated memory (cheap cross-run equality
    /// check for the differential oracle and replay tests).
    ///
    /// The global lock's simulated-release-timestamp and acquisition-count
    /// slots are excluded: both record *instrumentation* (timing, and how
    /// often the lock was taken — a failed STM validation acquires it
    /// without committing anything), which legitimately differs between a
    /// run and its replay, not program data.
    pub fn memory_digest(&self) -> u64 {
        self.mem.digest_excluding(&[self.lock.time_slot(), self.lock.count_slot()])
    }

    /// Runs `work` on `num_threads` workers under the Figure-1 retry
    /// mechanism with the given policy, returning aggregated statistics.
    ///
    /// `work` receives each worker's [`ThreadCtx`]; the join at the end is
    /// the phase barrier.
    ///
    /// # Panics
    ///
    /// Panics on any error [`Sim::try_run_parallel`] reports: too many
    /// workers for the platform, or a worker panic.
    pub fn run_parallel<F>(&self, num_threads: u32, policy: RetryPolicy, work: F) -> RunStats
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        self.try_run_parallel(num_threads, policy, work)
            .unwrap_or_else(|e| panic!("run_parallel: {e}"))
    }

    /// Like [`Sim::run_parallel`], but reports failures as structured
    /// errors instead of panicking.
    ///
    /// A panicking worker cannot hang the run: the panic is caught, the
    /// worker's in-flight transaction is rolled back, a global lock it held
    /// is force-released (so sibling workers still terminate), and the first
    /// panic is reported as [`SimError::WorkerPanicked`].
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyThreads`] when `num_threads` exceeds the
    /// platform's hardware threads or the simulator's slot limit;
    /// [`SimError::InvalidConfig`] when `num_threads` is 0;
    /// [`SimError::WorkerPanicked`] when a worker panicked.
    pub fn try_run_parallel<F>(
        &self,
        num_threads: u32,
        policy: RetryPolicy,
        work: F,
    ) -> SimResult<RunStats>
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        self.run_parallel_core(num_threads, policy, work, RunMode::Normal).map(|(stats, _)| stats)
    }

    /// Runs `work` like [`Sim::try_run_parallel`] while recording every
    /// thread's atomic-block decision stream, returning the statistics plus
    /// a [`ScheduleTrace`] that [`Sim::replay`] can re-execute
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sim::try_run_parallel`].
    pub fn record_parallel<F>(
        &self,
        num_threads: u32,
        policy: RetryPolicy,
        work: F,
    ) -> SimResult<(RunStats, ScheduleTrace)>
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        self.run_parallel_core(num_threads, policy, work, RunMode::Record)
            .map(|(stats, trace)| (stats, trace.expect("record mode produces a trace")))
    }

    /// Re-executes a recorded run: `work` must be the same workload the
    /// trace was recorded from, on a freshly-built identical `Sim`. Aborted
    /// attempts are re-applied from the trace (not re-executed) and the
    /// committing bodies run serialized in recorded commit order, so the
    /// deterministic [`RunStats`] counters (commits, aborts, injected
    /// faults, watchdog trips) and the final memory image match the
    /// recorded run. Fault injection, the watchdog and zEC12 restriction
    /// draws are disabled — those decisions are already in the trace.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sim::try_run_parallel`], plus
    /// [`SimError::InvalidConfig`] when the workload does not consume
    /// exactly the recorded blocks (replay divergence).
    pub fn replay<F>(
        &self,
        trace: &ScheduleTrace,
        policy: RetryPolicy,
        work: F,
    ) -> SimResult<RunStats>
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        self.run_parallel_core(trace.threads(), policy, work, RunMode::Replay(trace))
            .map(|(stats, _)| stats)
    }

    fn run_parallel_core<F>(
        &self,
        num_threads: u32,
        policy: RetryPolicy,
        work: F,
        mode: RunMode<'_>,
    ) -> SimResult<(RunStats, Option<ScheduleTrace>)>
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        if num_threads < 1 {
            return Err(SimError::InvalidConfig("need at least one worker".into()));
        }
        if num_threads > self.machine.config().hw_threads() {
            return Err(SimError::TooManyThreads {
                requested: num_threads,
                available: self.machine.config().hw_threads(),
                limit: format!("{} (hardware threads)", self.machine.config().name),
            });
        }
        if num_threads as usize > htm_core::MAX_SLOTS {
            return Err(SimError::TooManyThreads {
                requested: num_threads,
                available: htm_core::MAX_SLOTS as u32,
                limit: "the simulator slot table".into(),
            });
        }
        let record = matches!(mode, RunMode::Record);
        let replay = matches!(mode, RunMode::Replay(_));
        // One commit clock per run: certification and recording both stamp
        // each commit's position in the global serialization order. In the
        // default configuration neither is active and the engines keep their
        // zero-overhead path.
        let commit_clock = (self.cfg.certify || record).then(|| Arc::new(AtomicU64::new(1)));
        // One vector clock for the global fallback lock (sanitizer runs
        // only): irrevocable sections release/acquire through it.
        let lock_sync = self.cfg.sanitize.then(|| Arc::new(SyncClock::new()));
        // One hybrid epoch (a sequence lock over in-place write-backs) per
        // run, shared by every engine, created only when a software fallback
        // tier can run: with the default lock fallback the epoch stays
        // `None` and every engine keeps its zero-overhead read path.
        let hybrid_epoch =
            self.cfg.fallback.uses_software_commits().then(|| Arc::new(AtomicU64::new(0)));
        let turnstile = Turnstile::new();
        let work = &work;
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(num_threads as usize);
        let mut first_error: Option<SimError> = None;
        // All workers start together: without this, thread-spawn skew lets
        // early workers finish short workloads before any concurrency (and
        // hence any conflict) materializes.
        let start = Arc::new(std::sync::Barrier::new(num_threads as usize));
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_threads as usize);
            for tid in 0..num_threads {
                let mut ctx = self.make_ctx(tid, num_threads, ExecMode::Hardware, policy, !replay);
                if let Some(clock) = &commit_clock {
                    ctx.engine_mut().set_commit_clock(Arc::clone(clock));
                }
                if let Some(epoch) = &hybrid_epoch {
                    ctx.engine_mut().set_hybrid_epoch(Arc::clone(epoch));
                }
                if self.cfg.certify {
                    ctx.engine_mut().enable_certify();
                }
                if let Some(sync) = &lock_sync {
                    ctx.enable_sanitize(Arc::clone(sync));
                }
                match mode {
                    RunMode::Normal => {}
                    RunMode::Record => ctx.enable_recording(),
                    RunMode::Replay(trace) => {
                        ctx.enable_replay(trace.thread_blocks(tid), turnstile.clone());
                    }
                }
                let machine = Arc::clone(&self.machine);
                let start = Arc::clone(&start);
                handles.push(scope.spawn(move || {
                    let core = machine.config().core_of(tid);
                    machine.cores().thread_started(core);
                    start.wait();
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(&mut ctx)));
                    let result = match outcome {
                        Ok(()) => Ok(WorkerOut {
                            cert: ctx.engine_mut().take_cert(),
                            hb: ctx.engine_mut().take_hb(),
                            recording: ctx.take_recording(),
                            replay_leftover: ctx.replay_leftover(),
                            stats: ctx.take_stats(),
                        }),
                        Err(payload) => {
                            // Clean up what the dead worker left behind so
                            // the siblings can finish; a second panic here
                            // must not escape either.
                            let _ = catch_unwind(AssertUnwindSafe(|| ctx.panic_cleanup()));
                            Err(SimError::WorkerPanicked {
                                thread: tid,
                                message: panic_message(payload.as_ref()),
                            })
                        }
                    };
                    machine.cores().thread_stopped(core);
                    result
                }));
            }
            for h in handles {
                // The closure catches worker panics, so join only fails if
                // the *cleanup* path itself died; surface that as a panic
                // message rather than unwinding through the scope.
                match h.join() {
                    Ok(Ok(o)) => outs.push(o),
                    Ok(Err(e)) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                    Err(payload) => {
                        if first_error.is_none() {
                            first_error = Some(SimError::WorkerPanicked {
                                thread: u32::MAX,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
            }
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        let leftover: usize = outs.iter().map(|o| o.replay_leftover).sum();
        if leftover > 0 {
            return Err(SimError::InvalidConfig(format!(
                "replay diverged: {leftover} recorded atomic blocks were never consumed \
                 (the workload does not match the trace)"
            )));
        }
        let mut threads = Vec::with_capacity(outs.len());
        let mut per_thread = Vec::with_capacity(outs.len());
        let mut events: Vec<TxEvent> = Vec::new();
        let mut aborted: Vec<AbortedAttempt> = Vec::new();
        let mut truncated = false;
        let mut segments: Vec<Segment> = Vec::new();
        let mut hb_truncated = false;
        for o in outs {
            threads.push(o.stats);
            per_thread.push(o.recording);
            if let Some((ev, ab, tr)) = o.cert {
                events.extend(ev);
                aborted.extend(ab);
                truncated |= tr;
            }
            if let Some((segs, tr)) = o.hb {
                segments.extend(segs);
                hb_truncated |= tr;
            }
        }
        let mut stats = RunStats::new(threads);
        if self.cfg.certify {
            stats.opacity =
                Some(check_opacity(&events, &aborted, &self.cfg.certify_init, truncated));
            stats.certify =
                Some(crate::certify::certify(events, truncated, self.lock.acquisitions(&self.mem)));
        }
        if self.cfg.sanitize {
            stats.race = Some(detect_races(segments, hb_truncated));
        }
        let trace = record.then(|| ScheduleTrace::assemble(self.cfg.seed, per_thread));
        Ok((stats, trace))
    }

    /// Runs `work` once sequentially (the speed-up denominator), returning
    /// the simulated cycles consumed.
    pub fn run_sequential<F>(&self, work: F) -> u64
    where
        F: FnOnce(&mut ThreadCtx),
    {
        let mut ctx = self.seq_ctx();
        work(&mut ctx);
        ctx.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_core::AbortCategory;
    use htm_machine::Platform;

    fn sim(p: Platform) -> Sim {
        Sim::new(SimConfig::new(p.config()).mem_words(1 << 18))
    }

    #[test]
    fn sequential_counter_increment() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(1);
        let cycles = s.run_sequential(|ctx| {
            for _ in 0..100 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 100);
        assert!(cycles > 0);
    }

    #[test]
    fn parallel_counter_is_exact_on_every_platform() {
        for p in Platform::ALL {
            let s = sim(p);
            let a = s.alloc().alloc(1);
            let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
                for _ in 0..500 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            assert_eq!(s.read_word(a), 2000, "{p}: lost updates");
            assert_eq!(stats.committed_blocks(), 2000, "{p}");
        }
    }

    #[test]
    fn contended_counter_records_aborts() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..2000 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 8000);
        assert!(stats.total_aborts() > 0, "a single hot word must conflict");
        assert!(stats.aborts_in(AbortCategory::DataConflict) > 0);
    }

    #[test]
    fn disjoint_work_scales_without_aborts_or_serialization() {
        let s = sim(Platform::Zec12);
        let n = 4u32;
        // One isolated line (256 B = 32 words) per thread.
        let base = s.alloc().alloc_aligned(32 * n, 256);
        let stats = s.run_parallel(n, RetryPolicy::default(), |ctx| {
            let a = base.offset(32 * ctx.thread_id());
            for _ in 0..1000 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        // zEC12's modelled "cache-fetch-related" transient aborts can fire
        // even on disjoint data; what must be zero are data conflicts and
        // capacity overflows.
        assert_eq!(
            stats.aborts_in(AbortCategory::DataConflict),
            0,
            "disjoint lines must not conflict"
        );
        assert_eq!(stats.aborts_in(AbortCategory::Capacity), 0);
        for t in 0..n {
            assert_eq!(s.read_word(base.offset(32 * t)), 1000);
        }
    }

    #[test]
    fn capacity_bound_workload_falls_back_to_lock_on_power8() {
        let s = sim(Platform::Power8);
        // 200 lines of 128 B — way over the 64-entry TMCAM.
        let big = s.alloc().alloc_aligned(200 * 16, 128);
        // Single worker: with more, a concurrent holder of the fallback
        // lock can re-classify the capacity abort as a lock conflict.
        let stats = s.run_parallel(1, RetryPolicy::default(), |ctx| {
            for _ in 0..20 {
                ctx.atomic(|tx| {
                    for i in 0..200u32 {
                        let addr = big.offset(i * 16);
                        let v = tx.load(addr)?;
                        tx.store(addr, v + 1)?;
                    }
                    Ok(())
                });
            }
        });
        assert!(stats.aborts_in(AbortCategory::Capacity) > 0, "TMCAM must overflow");
        assert!(stats.irrevocable_commits() > 0, "must serialize to make progress");
        assert_eq!(s.read_word(big), 20, "updates must not be lost");
    }

    #[test]
    fn same_workload_fits_in_zec12_load_capacity() {
        let s = sim(Platform::Zec12);
        let big = s.alloc().alloc_aligned(200 * 32, 256);
        let stats = s.run_parallel(1, RetryPolicy::default(), |ctx| {
            for _ in 0..20 {
                ctx.atomic(|tx| {
                    // 200 lines read-only: fits the 1 MB read capacity and
                    // stays under the 8 KB store budget with 8 stores.
                    let mut sum = 0u64;
                    for i in 0..200u32 {
                        sum = sum.wrapping_add(tx.load(big.offset(i * 32))?);
                    }
                    for i in 0..8u32 {
                        tx.store(big.offset(i * 32), sum)?;
                    }
                    Ok(())
                });
            }
        });
        assert_eq!(stats.aborts_in(AbortCategory::Capacity), 0);
    }

    #[test]
    fn thread_count_respects_hardware_limit() {
        let s = sim(Platform::IntelCore);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run_parallel(16, RetryPolicy::default(), |_| {});
        }));
        assert!(r.is_err(), "Intel Core has only 8 hardware threads");
    }

    #[test]
    fn try_run_parallel_reports_thread_limit_as_error() {
        let s = sim(Platform::IntelCore);
        match s.try_run_parallel(16, RetryPolicy::default(), |_| {}) {
            Err(SimError::TooManyThreads { requested: 16, available: 8, .. }) => {}
            other => panic!("expected TooManyThreads, got {other:?}"),
        }
        assert!(matches!(
            s.try_run_parallel(0, RetryPolicy::default(), |_| {}),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn worker_panic_is_caught_and_siblings_complete() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(1);
        let err = s
            .try_run_parallel(4, RetryPolicy::default(), |ctx| {
                if ctx.thread_id() == 2 {
                    panic!("injected test panic");
                }
                for _ in 0..200 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            })
            .unwrap_err();
        match err {
            SimError::WorkerPanicked { thread: 2, ref message } => {
                assert!(message.contains("injected test panic"), "{message}");
            }
            other => panic!("expected WorkerPanicked from thread 2, got {other:?}"),
        }
        // The three surviving workers finished their full workload: the
        // dead thread wedged neither the lock nor the conflict tables.
        assert_eq!(s.read_word(a), 600);
    }

    #[test]
    fn panicking_lock_holder_does_not_hang_siblings() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(1);
        // Thread 0 panics *inside* an irrevocable section (forced by a
        // zero-retry policy under guaranteed contention on one word), i.e.
        // while holding the global lock.
        let err = s
            .try_run_parallel(4, RetryPolicy::uniform(0), |ctx| {
                for i in 0..200u64 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                    if ctx.thread_id() == 0 && i == 50 {
                        panic!("holder dies");
                    }
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::WorkerPanicked { thread: 0, .. }), "{err:?}");
        assert!(!s.lock().is_locked(s.mem()), "panic recovery must free the global lock");
    }

    #[test]
    fn invalid_fault_plan_is_rejected_at_build() {
        let cfg = SimConfig::new(Platform::IntelCore.config())
            .faults(crate::FaultPlan::none().doom_at_commit(2.0));
        assert!(matches!(Sim::try_new(cfg), Err(SimError::InvalidConfig(_))));
    }

    fn faulty_sim(p: Platform, plan: crate::FaultPlan) -> Sim {
        Sim::new(SimConfig::new(p.config()).mem_words(1 << 18).faults(plan))
    }

    #[test]
    fn all_fault_kinds_preserve_correct_results() {
        let plan = crate::FaultPlan::none()
            .transient_abort_per_begin(0.2)
            .capacity_abort_per_begin(0.1)
            .transient_abort_per_access(0.05)
            .doom_at_commit(0.1)
            .lock_release_delay(200);
        for p in Platform::ALL {
            let s = faulty_sim(p, plan);
            let a = s.alloc().alloc(1);
            let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
                for _ in 0..300 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            assert_eq!(s.read_word(a), 1200, "{p}: faults must not corrupt results");
            assert_eq!(stats.committed_blocks(), 1200, "{p}");
            assert!(stats.injected_faults() > 0, "{p}: plan must actually fire");
        }
    }

    #[test]
    fn persistent_abort_storm_degrades_to_lock_and_completes() {
        // 100% capacity aborts: no hardware transaction can ever commit, so
        // every block must reach the irrevocable fallback.
        let plan = crate::FaultPlan::none().capacity_abort_per_begin(1.0);
        let s = faulty_sim(Platform::IntelCore, plan);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..100 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 400);
        assert_eq!(stats.hw_commits(), 0, "no hardware commit can survive the storm");
        assert_eq!(stats.irrevocable_commits(), 400);
    }

    #[test]
    fn abort_storm_trips_the_watchdog_under_huge_retry_budgets() {
        // With effectively unbounded retries the Figure-1 counters would
        // spin ~forever on a 100% abort plan; the watchdog must cut in.
        let plan = crate::FaultPlan::none().transient_abort_per_begin(1.0);
        let cfg =
            SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).faults(plan).watchdog(
                WatchdogConfig { starvation_bound: 16, degraded_blocks: 4, escalation_cap: 3 },
            );
        let s = Sim::new(cfg);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(2, RetryPolicy::uniform(1_000_000), |ctx| {
            for _ in 0..50 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 100);
        assert!(stats.watchdog_trips() > 0, "the watchdog must have fired");
        assert!(stats.degraded_commits() > 0);
        assert!(stats.degraded_cycles() > 0);
        assert_eq!(stats.committed_blocks(), 100);
    }

    #[test]
    fn spec_id_faults_only_affect_platforms_with_a_pool() {
        let plan = crate::FaultPlan::none()
            .spec_id_abort_per_begin(0.3)
            .spec_id_stall_per_begin(0.3)
            .spec_id_drain(120);
        for p in [Platform::BlueGeneQ, Platform::IntelCore] {
            let s = faulty_sim(p, plan);
            let a = s.alloc().alloc(1);
            let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
                for _ in 0..200 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            assert_eq!(s.read_word(a), 800, "{p}");
            if p == Platform::BlueGeneQ {
                assert!(stats.injected_faults() > 0);
                assert!(
                    stats.threads.iter().map(|t| t.spec_id_wait_cycles).sum::<u64>() > 0,
                    "drained pool + forced stalls must cost spec-id wait time"
                );
            }
        }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_default() {
        let run = |with_explicit_empty_plan: bool| {
            let mut cfg = SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).seed(7);
            if with_explicit_empty_plan {
                cfg = cfg.faults(crate::FaultPlan::none());
            }
            let s = Sim::new(cfg);
            let a = s.alloc().alloc(1);
            let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
                for _ in 0..300 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            (stats.committed_blocks(), stats.injected_faults(), s.read_word(a))
        };
        // Committed blocks and results must agree exactly; cycle counts are
        // schedule-dependent under real threads, so they are not compared.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn traced_sequential_run_yields_footprints() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(64);
        let mut ctx = s.seq_ctx_traced(&[64, 256]);
        ctx.atomic(|tx| {
            for i in 0..16u32 {
                let v = tx.load(a.offset(i))?;
                tx.store(a.offset(i), v + 1)?;
            }
            Ok(())
        });
        let tracer = s.take_tracer(&mut ctx);
        // 16 words = 128 bytes: 2 lines at 64 B, 1 line at 256 B.
        assert_eq!(tracer.samples(0).last(), Some(&(2, 2)));
        assert_eq!(tracer.samples(1).last(), Some(&(1, 1)));
    }

    #[test]
    fn footprint_stats_record_committed_sizes() {
        let s = Sim::new(
            SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).trace_footprints(true),
        );
        // Leave a gap after the lock line so the stride prefetcher cannot
        // pull an extra line into the monitored set.
        let _gap = s.alloc().alloc_aligned(64, 64);
        let a = s.alloc().alloc_aligned(32, 64);
        let stats = s.run_parallel(1, RetryPolicy::default(), |ctx| {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        });
        let fps: Vec<_> = stats.footprints().collect();
        assert_eq!(fps.len(), 1);
        // Lock subscription adds one read line beside the data line.
        assert_eq!(fps[0].1, 1, "one store line");
        assert_eq!(fps[0].0, 2, "data line + lock line");
    }

    #[test]
    fn hle_works_end_to_end() {
        let s = sim(Platform::IntelCore);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..500 {
                ctx.atomic_hle(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 2000);
        // HLE has no retries: contended aborts go straight to the lock.
        assert!(stats.irrevocable_commits() > 0);
    }

    #[test]
    fn constrained_transactions_always_commit_in_hardware() {
        let s = sim(Platform::Zec12);
        let a = s.alloc().alloc_aligned(1, 256);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..500 {
                ctx.atomic_constrained(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 2000);
        assert_eq!(stats.irrevocable_commits(), 0, "constrained txs never take a lock");
        assert_eq!(stats.hw_commits(), 2000);
    }

    #[test]
    fn rollback_only_speculation() {
        let s = sim(Platform::Power8);
        let a = s.alloc().alloc(1);
        let _ = s.run_parallel(1, RetryPolicy::default(), |ctx| {
            let r = ctx.try_rollback_only(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)?;
                Ok(v)
            });
            assert_eq!(r, Some(0));
        });
        assert_eq!(s.read_word(a), 1);
    }

    #[test]
    fn stm_fallback_preserves_counter_exactness_on_every_platform() {
        for p in Platform::ALL {
            let s = Sim::new(
                SimConfig::new(p.config()).mem_words(1 << 18).fallback(FallbackPolicy::Stm),
            );
            let a = s.alloc().alloc(1);
            // Zero retries: every hardware abort drops straight into the
            // software tier, so hardware and software commits interleave on
            // the same hot word.
            let stats = s.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
                for _ in 0..500 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            assert_eq!(s.read_word(a), 2000, "{p}: lost updates under STM fallback");
            assert_eq!(stats.committed_blocks(), 2000, "{p}");
            assert!(stats.stm_commits() > 0, "{p}: contention must reach the software tier");
        }
    }

    #[test]
    fn rot_fallback_commits_on_power8() {
        let s = Sim::new(
            SimConfig::new(Platform::Power8.config())
                .mem_words(1 << 18)
                .fallback(FallbackPolicy::Rot),
        );
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
            for _ in 0..500 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 2000, "lost updates under ROT fallback");
        assert_eq!(stats.committed_blocks(), 2000);
        assert!(stats.rot_commits() > 0, "contention must reach the ROT tier");
    }

    #[test]
    fn rot_fallback_degrades_to_lock_without_rollback_only_support() {
        let s = Sim::new(
            SimConfig::new(Platform::IntelCore.config())
                .mem_words(1 << 18)
                .fallback(FallbackPolicy::Rot),
        );
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
            for _ in 0..300 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 1200);
        assert_eq!(stats.rot_commits(), 0, "Intel Core has no rollback-only transactions");
        assert!(stats.irrevocable_commits() > 0, "degraded blocks serialize under the lock");
    }

    #[test]
    fn stm_fallback_survives_a_persistent_abort_storm() {
        // 100% capacity aborts kill every hardware attempt; the begin fault
        // also fires on software begins, so blocks fall through STM to the
        // irrevocable tier — results must still be exact.
        let plan = crate::FaultPlan::none().capacity_abort_per_begin(1.0);
        let s = Sim::new(
            SimConfig::new(Platform::IntelCore.config())
                .mem_words(1 << 18)
                .faults(plan)
                .fallback(FallbackPolicy::Stm),
        );
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..100 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 400);
        assert_eq!(stats.committed_blocks(), 400);
        assert_eq!(stats.hw_commits(), 0, "no hardware commit can survive the storm");
        assert!(stats.injected_faults() > 0);
    }

    #[test]
    fn determinism_of_sequential_runs() {
        let run = || {
            let s = sim(Platform::IntelCore);
            let a = s.alloc().alloc(4);
            s.run_sequential(|ctx| {
                for i in 0..50u64 {
                    ctx.atomic(|tx| tx.store(a.offset((i % 4) as u32), i));
                }
            })
        };
        assert_eq!(run(), run(), "sequential cycle counts must be deterministic");
    }
}
