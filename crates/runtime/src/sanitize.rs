//! Per-thread capture for the happens-before race sanitizer
//! ([`SimConfig::sanitize`](crate::SimConfig)).
//!
//! An [`HbCapture`] lives inside each worker's transaction engine and
//! mirrors the certifier's capture discipline: transactional accesses
//! accumulate in a per-attempt buffer that is folded into the record only
//! when the attempt commits (aborted attempts never happened), while
//! non-transactional accesses (plain `read_word`/`write_word`, POWER8
//! suspended-mode accesses) are recorded immediately. Synchronization
//! operations — global-lock hand-offs and phase barriers — close the
//! current [`Segment`] and move the thread's [`VectorClock`] through the
//! corresponding [`SyncClock`]. After the run,
//! [`detect_races`](htm_core::detect_races) post-processes all threads'
//! segments.

use std::collections::HashSet;

use htm_core::{Access, Segment, SyncClock, VectorClock, WordAddr};

/// Bound on segments kept per thread; beyond this the capture reports
/// itself truncated and stops recording.
pub(crate) const MAX_SEGMENTS_PER_THREAD: usize = 1 << 14;

/// Bound on deduplicated accesses kept per segment.
pub(crate) const MAX_ACCESSES_PER_SEGMENT: usize = 1 << 17;

/// Per-thread happens-before capture state.
#[derive(Debug)]
pub(crate) struct HbCapture {
    thread: u32,
    vc: VectorClock,
    segments: Vec<Segment>,
    cur: Vec<Access>,
    cur_set: HashSet<Access>,
    attempt: Vec<(WordAddr, bool)>,
    attempt_set: HashSet<(WordAddr, bool)>,
    truncated: bool,
}

impl HbCapture {
    pub(crate) fn new(thread: u32) -> HbCapture {
        let mut vc = VectorClock::new();
        // Epoch convention (see htm_core::hb::Segment): a thread's own
        // component starts at 1 so its first segment is never covered by
        // another thread's zero component.
        vc.tick(thread as usize);
        HbCapture {
            thread,
            vc,
            segments: Vec::new(),
            cur: Vec::new(),
            cur_set: HashSet::new(),
            attempt: Vec::new(),
            attempt_set: HashSet::new(),
            truncated: false,
        }
    }

    fn record(&mut self, addr: WordAddr, write: bool, tx: bool) {
        if self.cur.len() >= MAX_ACCESSES_PER_SEGMENT {
            self.truncated = true;
            return;
        }
        let a = Access { addr, write, tx };
        if self.cur_set.insert(a) {
            self.cur.push(a);
        }
    }

    /// Non-transactional read (plain `read_word`, suspended-mode load).
    pub(crate) fn nontx_read(&mut self, addr: WordAddr) {
        self.record(addr, false, false);
    }

    /// Non-transactional write (plain `write_word`/`cas_word`,
    /// suspended-mode store).
    pub(crate) fn nontx_write(&mut self, addr: WordAddr) {
        self.record(addr, true, false);
    }

    /// Access inside the current hardware-transaction attempt; buffered
    /// until [`HbCapture::commit_tx`] since aborted attempts roll back.
    pub(crate) fn tx_access(&mut self, addr: WordAddr, write: bool) {
        if self.attempt.len() >= MAX_ACCESSES_PER_SEGMENT {
            self.truncated = true;
            return;
        }
        if self.attempt_set.insert((addr, write)) {
            self.attempt.push((addr, write));
        }
    }

    /// Access inside an irrevocable block: transactional-side, and final
    /// immediately (irrevocable blocks cannot roll back).
    pub(crate) fn irr_access(&mut self, addr: WordAddr, write: bool) {
        self.record(addr, write, true);
    }

    /// The current attempt committed: its accesses become transactional
    /// accesses of the current segment.
    pub(crate) fn commit_tx(&mut self) {
        let attempt = std::mem::take(&mut self.attempt);
        self.attempt_set.clear();
        for (addr, write) in attempt {
            self.record(addr, write, true);
        }
    }

    /// The current attempt aborted: discard its accesses.
    pub(crate) fn rollback_tx(&mut self) {
        self.attempt.clear();
        self.attempt_set.clear();
    }

    fn close_segment(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        if self.segments.len() >= MAX_SEGMENTS_PER_THREAD {
            self.truncated = true;
            self.cur.clear();
            self.cur_set.clear();
            return;
        }
        self.segments.push(Segment {
            thread: self.thread,
            vc: self.vc.clone(),
            accesses: std::mem::take(&mut self.cur),
        });
        self.cur_set.clear();
    }

    /// Release edge on `sync` (before unlocking / entering a barrier).
    pub(crate) fn release(&mut self, sync: &SyncClock) {
        self.close_segment();
        sync.release(&mut self.vc, self.thread as usize);
    }

    /// Acquire edge on `sync` (after locking / leaving a barrier).
    pub(crate) fn acquire(&mut self, sync: &SyncClock) {
        self.close_segment();
        sync.acquire(&mut self.vc);
    }

    /// Finishes the capture, returning all segments and whether any bound
    /// was hit.
    pub(crate) fn take(mut self) -> (Vec<Segment>, bool) {
        debug_assert!(self.attempt.is_empty(), "attempt left open at end of run");
        self.close_segment();
        (self.segments, self.truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_core::detect_races;

    #[test]
    fn committed_attempt_is_tx_side() {
        let mut c = HbCapture::new(0);
        c.tx_access(WordAddr(1), true);
        c.commit_tx();
        let (segs, trunc) = c.take();
        assert!(!trunc);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].accesses, vec![Access { addr: WordAddr(1), write: true, tx: true }]);
    }

    #[test]
    fn aborted_attempt_is_discarded() {
        let mut c = HbCapture::new(0);
        c.tx_access(WordAddr(1), true);
        c.rollback_tx();
        c.nontx_read(WordAddr(2));
        let (segs, _) = c.take();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].accesses, vec![Access { addr: WordAddr(2), write: false, tx: false }]);
    }

    #[test]
    fn sync_ops_split_segments_and_order_them() {
        let sync = SyncClock::new();
        let mut t0 = HbCapture::new(0);
        let mut t1 = HbCapture::new(1);
        // Thread 0 writes, then releases; thread 1 acquires, then writes:
        // an ordered pair, no race.
        t0.nontx_write(WordAddr(9));
        t0.release(&sync);
        t1.acquire(&sync);
        t1.nontx_write(WordAddr(9));
        let (mut segs, _) = t0.take();
        let (s1, _) = t1.take();
        segs.extend(s1);
        assert_eq!(segs.len(), 2);
        assert!(detect_races(segs, false).ok());
    }

    #[test]
    fn unsynchronized_writes_race() {
        let mut t0 = HbCapture::new(0);
        let mut t1 = HbCapture::new(1);
        t0.nontx_write(WordAddr(9));
        t1.nontx_write(WordAddr(9));
        let (mut segs, _) = t0.take();
        let (s1, _) = t1.take();
        segs.extend(s1);
        let report = detect_races(segs, false);
        assert_eq!(report.races.len(), 1);
    }

    #[test]
    fn duplicate_accesses_dedup_within_segment() {
        let mut c = HbCapture::new(0);
        for _ in 0..100 {
            c.nontx_read(WordAddr(3));
        }
        let (segs, _) = c.take();
        assert_eq!(segs[0].accesses.len(), 1);
    }

    #[test]
    fn empty_segments_are_not_emitted() {
        let sync = SyncClock::new();
        let mut c = HbCapture::new(0);
        c.release(&sync);
        c.acquire(&sync);
        c.release(&sync);
        let (segs, trunc) = c.take();
        assert!(segs.is_empty());
        assert!(!trunc);
    }
}
