//! The global fallback lock.
//!
//! When TM executes critical sections, the standard fallback guaranteeing
//! forward progress is a single global lock that makes a transaction
//! irrevocable (Section 3). The lock is *a word in simulated memory* on its
//! own conflict-detection line: transactions subscribe to it by reading it
//! transactionally, so a lock acquisition — a non-transactional CAS — dooms
//! all subscribed transactions through the ordinary conflict mechanism,
//! exactly as on real hardware.

use htm_core::{Clock, CostModel, SimAlloc, TxMemory, WordAddr};

/// Handle to the global lock word (one per simulation).
///
/// The word after the lock holds the *simulated release timestamp*: a
/// waiter that acquires (or observes the release of) the lock advances its
/// own clock to that time, so lock serialization costs simulated time even
/// though worker clocks are otherwise independent. The timestamp is
/// simulation instrumentation, written with plain stores invisible to
/// conflict detection.
#[derive(Clone, Copy, Debug)]
pub struct GlobalLock {
    addr: WordAddr,
}

impl GlobalLock {
    /// Allocates the lock word on an isolated, granularity-aligned line so
    /// no program data shares its conflict-detection line.
    pub(crate) fn new(alloc: &SimAlloc, granularity: u32) -> GlobalLock {
        let align = granularity.max(64);
        let words = (align / htm_core::WORD_BYTES as u32).max(3);
        GlobalLock { addr: alloc.alloc_aligned(words, align) }
    }

    pub(crate) fn time_slot(&self) -> WordAddr {
        self.addr.offset(1)
    }

    pub(crate) fn count_slot(&self) -> WordAddr {
        self.addr.offset(2)
    }

    /// Number of successful acquisitions so far (certifier input: an upper
    /// bound on the irrevocable sections the conflict graph should contain).
    /// Like the timestamp, the counter is simulation instrumentation written
    /// with plain stores under the lock, invisible to conflict detection.
    pub fn acquisitions(&self, mem: &TxMemory) -> u64 {
        mem.read_word(self.count_slot())
    }

    /// Address of the lock word; transactions subscribe by loading it.
    pub fn addr(&self) -> WordAddr {
        self.addr
    }

    /// Whether the lock is currently held (plain peek; does not disturb any
    /// transaction).
    pub fn is_locked(&self, mem: &TxMemory) -> bool {
        mem.read_word(self.addr) != 0
    }

    /// Spins until the lock is free, then acquires it with a
    /// non-transactional CAS (dooming all subscribed transactions).
    /// Returns the simulated cycles spent waiting.
    pub(crate) fn acquire(
        &self,
        mem: &TxMemory,
        owner_tag: u64,
        clock: &Clock,
        cost: &CostModel,
    ) -> u64 {
        debug_assert_ne!(owner_tag, 0, "owner tag 0 means unlocked");
        let mut waited = 0u64;
        let mut polls = 0u64;
        loop {
            if mem.read_word(self.addr) == 0 {
                clock.tick(cost.lock_op);
                if mem.nontx_cas(None, self.addr, 0, owner_tag).is_ok() {
                    // Eagerly-subscribed transactions are doomed by the CAS
                    // itself (they read the lock line); lazily-subscribed
                    // (Blue Gene/Q long-running) ones keep running — they
                    // are safe because every irrevocable access dooms
                    // conflicting transactions at line granularity, and the
                    // end-of-transaction subscription blocks commits while
                    // the lock is held. That survival is lazy
                    // subscription's whole point: a fallback does not wipe
                    // out all concurrent speculation.
                    //
                    // Serialization costs simulated time: resume no earlier
                    // than the previous holder's release.
                    clock.advance_to(mem.read_word(self.time_slot()));
                    // Plain read-modify-write is race-free here: only the
                    // lock holder touches the counter.
                    let n = mem.read_word(self.count_slot());
                    mem.write_word(self.count_slot(), n + 1);
                    return waited;
                }
            }
            clock.tick(cost.spin_poll);
            waited += cost.spin_poll;
            polls += 1;
            // Under the model checker the holder is parked until granted a
            // step; park this thread instead of spinning against it.
            htm_core::coop::point(htm_core::coop::CoopPoint::Blocked);
            std::hint::spin_loop();
            if polls.is_multiple_of(512) {
                std::thread::yield_now();
            }
        }
    }

    /// Releases the lock, stamping the holder's simulated time for the
    /// next acquirer.
    pub(crate) fn release(&self, mem: &TxMemory, clock: &Clock, cost: &CostModel) {
        clock.tick(cost.lock_op);
        mem.write_word(self.time_slot(), clock.now());
        mem.nontx_store(None, self.addr, 0);
    }

    /// Releases the lock only if `owner_tag` currently holds it. Recovery
    /// path after a worker panic: the dead holder can no longer release, and
    /// without this every sibling would spin on the lock forever. Returns
    /// whether a release happened.
    pub(crate) fn force_release_if_held_by(
        &self,
        mem: &TxMemory,
        owner_tag: u64,
        clock: &Clock,
        cost: &CostModel,
    ) -> bool {
        if mem.read_word(self.addr) == owner_tag {
            self.release(mem, clock, cost);
            true
        } else {
            false
        }
    }

    /// Spins until the lock is observed free (lemming-effect avoidance,
    /// Figure 1 line 9). Returns the simulated cycles spent waiting.
    pub(crate) fn wait_released(&self, mem: &TxMemory, clock: &Clock, cost: &CostModel) -> u64 {
        let mut waited = 0u64;
        let mut polls = 0u64;
        let mut waited_any = false;
        while self.is_locked(mem) {
            waited_any = true;
            clock.tick(cost.spin_poll);
            waited += cost.spin_poll;
            polls += 1;
            htm_core::coop::point(htm_core::coop::CoopPoint::Blocked);
            std::hint::spin_loop();
            if polls.is_multiple_of(512) {
                std::thread::yield_now();
            }
        }
        if waited_any {
            clock.advance_to(mem.read_word(self.time_slot()));
        }
        waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_core::{ConflictPolicy, Geometry, SlotId};

    fn setup() -> (TxMemory, GlobalLock, Clock, CostModel) {
        let alloc = SimAlloc::new(1, 1024);
        let lock = GlobalLock::new(&alloc, 256);
        let mem = TxMemory::new(1024, Geometry::new(256));
        (mem, lock, Clock::new(), CostModel::uniform())
    }

    #[test]
    fn lock_word_is_line_aligned() {
        let (_, lock, _, _) = setup();
        assert_eq!(lock.addr().byte_addr() % 256, 0);
    }

    #[test]
    fn acquire_release_round_trip() {
        let (mem, lock, clock, cost) = setup();
        assert!(!lock.is_locked(&mem));
        lock.acquire(&mem, 1, &clock, &cost);
        assert!(lock.is_locked(&mem));
        lock.release(&mem, &clock, &cost);
        assert!(!lock.is_locked(&mem));
    }

    #[test]
    fn acquisition_dooms_subscribed_transactions() {
        let (mem, lock, clock, cost) = setup();
        let s = SlotId(0);
        mem.begin_slot(s);
        // Transaction subscribes by reading the lock line.
        mem.tx_read_line(s, mem.line_of(lock.addr()), ConflictPolicy::RequesterWins).unwrap();
        lock.acquire(&mem, 2, &clock, &cost);
        assert!(mem.doom_cause(s).is_some(), "subscriber must be doomed by acquisition");
        mem.finish_slot(s);
        lock.release(&mem, &clock, &cost);
    }

    #[test]
    fn force_release_only_affects_the_named_holder() {
        let (mem, lock, clock, cost) = setup();
        lock.acquire(&mem, 3, &clock, &cost);
        assert!(!lock.force_release_if_held_by(&mem, 2, &clock, &cost), "wrong tag: no-op");
        assert!(lock.is_locked(&mem));
        assert!(lock.force_release_if_held_by(&mem, 3, &clock, &cost));
        assert!(!lock.is_locked(&mem));
        assert!(!lock.force_release_if_held_by(&mem, 3, &clock, &cost), "already free");
    }

    #[test]
    fn acquisitions_count_successful_acquires() {
        let (mem, lock, clock, cost) = setup();
        assert_eq!(lock.acquisitions(&mem), 0);
        for _ in 0..3 {
            lock.acquire(&mem, 1, &clock, &cost);
            lock.release(&mem, &clock, &cost);
        }
        assert_eq!(lock.acquisitions(&mem), 3);
    }

    #[test]
    fn wait_released_returns_immediately_when_free() {
        let (mem, lock, clock, cost) = setup();
        assert_eq!(lock.wait_released(&mem, &clock, &cost), 0);
    }

    #[test]
    fn contended_acquire_serializes() {
        use std::sync::Arc;
        let alloc = SimAlloc::new(1, 4096);
        let lock = GlobalLock::new(&alloc, 64);
        let mem = Arc::new(TxMemory::new(4096, Geometry::new(64)));
        let counter = WordAddr(2048);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let clock = Clock::new();
                let cost = CostModel::uniform();
                for _ in 0..1000 {
                    lock.acquire(&mem, t + 1, &clock, &cost);
                    let v = mem.read_word(counter);
                    mem.write_word(counter, v + 1);
                    lock.release(&mem, &clock, &cost);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.read_word(counter), 4000, "lock must provide mutual exclusion");
    }
}
