//! Deterministic record/replay of parallel runs.
//!
//! `Sim::record_parallel` runs a workload normally while — per thread —
//! capturing the *decision stream* of every atomic block: how many hardware
//! attempts aborted (with cause, Figure-3 category, injected-fault count,
//! workload-RNG draws and allocation sizes each attempt consumed) and how
//! the block finally committed (hardware, constrained, or irrevocable /
//! degraded), stamped with its position in the global commit order. The
//! result is a [`ScheduleTrace`], serializable to disk as a small text
//! file.
//!
//! `Sim::replay` re-executes the same workload against the trace: aborted
//! attempts are *not* re-executed (re-running a doomed body against
//! already-moved memory would diverge) — their statistics are re-applied,
//! their RNG draws skipped and their allocations re-issued, so the workload
//! RNG stream and the per-thread allocator state stay bit-identical.
//! Committing bodies then execute once each, serialized by a global
//! turnstile in recorded commit order through the normal engine paths.
//! Serialized execution cannot conflict, so every replayed body commits on
//! its recorded path and observes exactly the values the original committed
//! execution observed (this is the opacity property the certifier checks).
//!
//! Replay disables fault injection, the watchdog, and zEC12's probabilistic
//! restriction aborts: those decisions are already baked into the trace.
//!
//! Bit-identical memory digests additionally require that the parallel
//! phase performs no allocation from the *shared* chunk allocator (per-
//! thread chunk grabs are schedule-ordered); workloads that pre-allocate in
//! their setup phase replay bit-identically.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One aborted hardware attempt inside an atomic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct AttemptRecord {
    /// Encoded [`AbortCause`](htm_core::AbortCause) (diagnostics).
    pub cause: u32,
    /// Figure-3 category index the abort was recorded under.
    pub category: u8,
    /// Faults injected into this attempt.
    pub faults: u32,
    /// Workload-RNG draws the attempt's body consumed.
    pub draws: u64,
    /// `Tx::alloc` sizes (words) the attempt's body issued.
    pub allocs: Vec<u32>,
}

/// How an atomic block finally committed. `order` is the block's dense rank
/// in the global commit order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockOutcome {
    /// Committed as a hardware transaction.
    Hw { order: u64 },
    /// Committed as a zEC12 constrained transaction.
    Constrained { order: u64 },
    /// Committed as a software (STM fallback) transaction.
    Stm { order: u64 },
    /// Committed as a software-validated rollback-only (ROT tier)
    /// transaction.
    Rot { order: u64 },
    /// Committed as a capacity-stretched (spill tier) POWER8 transaction:
    /// a hardware commit under the sequence lock whose overflow footprint
    /// was validated through the software side log.
    Spilled { order: u64 },
    /// Committed irrevocably under the global lock. `degraded` marks
    /// watchdog-degraded blocks; `trip` marks the block that tripped it.
    Irrevocable { order: u64, degraded: bool, trip: bool },
}

impl BlockOutcome {
    pub(crate) fn order(&self) -> u64 {
        match *self {
            BlockOutcome::Hw { order }
            | BlockOutcome::Constrained { order }
            | BlockOutcome::Stm { order }
            | BlockOutcome::Rot { order }
            | BlockOutcome::Spilled { order }
            | BlockOutcome::Irrevocable { order, .. } => order,
        }
    }

    fn with_order(self, order: u64) -> BlockOutcome {
        match self {
            BlockOutcome::Hw { .. } => BlockOutcome::Hw { order },
            BlockOutcome::Constrained { .. } => BlockOutcome::Constrained { order },
            BlockOutcome::Stm { .. } => BlockOutcome::Stm { order },
            BlockOutcome::Rot { .. } => BlockOutcome::Rot { order },
            BlockOutcome::Spilled { .. } => BlockOutcome::Spilled { order },
            BlockOutcome::Irrevocable { degraded, trip, .. } => {
                BlockOutcome::Irrevocable { order, degraded, trip }
            }
        }
    }
}

/// One atomic block: its aborted attempts plus the final outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BlockRecord {
    pub attempts: Vec<AttemptRecord>,
    pub outcome: BlockOutcome,
}

/// A recorded schedule of one parallel run (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleTrace {
    threads: u32,
    seed: u64,
    per_thread: Vec<Vec<BlockRecord>>,
}

impl ScheduleTrace {
    /// Assembles a trace from per-thread recordings, renumbering the raw
    /// commit-clock stamps into a dense global order (the commit clock is
    /// shared with non-transactional stores and certification, so raw
    /// stamps may have gaps).
    pub(crate) fn assemble(seed: u64, per_thread: Vec<Vec<BlockRecord>>) -> ScheduleTrace {
        let mut stamps: Vec<u64> = per_thread.iter().flatten().map(|b| b.outcome.order()).collect();
        stamps.sort_unstable();
        let rank = |s: u64| stamps.binary_search(&s).expect("stamp present") as u64;
        let per_thread: Vec<Vec<BlockRecord>> = per_thread
            .into_iter()
            .map(|blocks| {
                blocks
                    .into_iter()
                    .map(|b| BlockRecord {
                        attempts: b.attempts,
                        outcome: b.outcome.with_order(rank(b.outcome.order())),
                    })
                    .collect()
            })
            .collect();
        ScheduleTrace { threads: per_thread_len(&per_thread), seed, per_thread }
    }

    /// Worker threads the trace was recorded with (replay must use the
    /// same count).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The `SimConfig` seed of the recorded run (diagnostics; replay should
    /// use a simulation built with the same seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total atomic blocks recorded across all threads.
    pub fn blocks(&self) -> usize {
        self.per_thread.iter().map(Vec::len).sum()
    }

    /// Total aborted attempts recorded across all threads.
    pub fn aborted_attempts(&self) -> usize {
        self.per_thread.iter().flatten().map(|b| b.attempts.len()).sum()
    }

    pub(crate) fn thread_blocks(&self, thread: u32) -> Vec<BlockRecord> {
        self.per_thread[thread as usize].clone()
    }

    /// Serializes the trace to its text representation.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "htm-schedule-trace v1");
        let _ = writeln!(out, "threads {} seed {:#x}", self.threads, self.seed);
        for (t, blocks) in self.per_thread.iter().enumerate() {
            let _ = writeln!(out, "thread {t} blocks {}", blocks.len());
            for b in blocks {
                let _ = writeln!(out, "block attempts {}", b.attempts.len());
                for a in &b.attempts {
                    let _ = write!(
                        out,
                        "attempt cause {} cat {} faults {} draws {} allocs",
                        a.cause, a.category, a.faults, a.draws
                    );
                    for w in &a.allocs {
                        let _ = write!(out, " {w}");
                    }
                    let _ = writeln!(out);
                }
                match b.outcome {
                    BlockOutcome::Hw { order } => {
                        let _ = writeln!(out, "commit hw {order}");
                    }
                    BlockOutcome::Constrained { order } => {
                        let _ = writeln!(out, "commit cx {order}");
                    }
                    BlockOutcome::Stm { order } => {
                        let _ = writeln!(out, "commit stm {order}");
                    }
                    BlockOutcome::Rot { order } => {
                        let _ = writeln!(out, "commit rot {order}");
                    }
                    BlockOutcome::Spilled { order } => {
                        let _ = writeln!(out, "commit sp {order}");
                    }
                    BlockOutcome::Irrevocable { order, degraded, trip } => {
                        let _ =
                            writeln!(out, "commit irr {order} {} {}", degraded as u8, trip as u8);
                    }
                }
            }
        }
        out
    }

    /// Parses a trace from its text representation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<ScheduleTrace, String> {
        let mut lines = text.lines().enumerate();
        let bad = |n: usize, what: &str| format!("schedule trace line {}: {what}", n + 1);
        let (n, header) = lines.next().ok_or("empty schedule trace")?;
        if header.trim() != "htm-schedule-trace v1" {
            return Err(bad(n, "bad header"));
        }
        let (n, meta) = lines.next().ok_or("missing meta line")?;
        let meta_parts: Vec<&str> = meta.split_whitespace().collect();
        let (threads, seed) = match meta_parts.as_slice() {
            ["threads", t, "seed", s] => (
                t.parse::<u32>().map_err(|_| bad(n, "bad thread count"))?,
                parse_u64(s).ok_or_else(|| bad(n, "bad seed"))?,
            ),
            _ => return Err(bad(n, "expected `threads <n> seed <s>`")),
        };
        let mut per_thread: Vec<Vec<BlockRecord>> = Vec::with_capacity(threads as usize);
        let mut cur_blocks: Option<Vec<BlockRecord>> = None;
        let mut cur_attempts: Vec<AttemptRecord> = Vec::new();
        for (n, line) in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["thread", _, "blocks", _] => {
                    if let Some(done) = cur_blocks.take() {
                        per_thread.push(done);
                    }
                    cur_blocks = Some(Vec::new());
                }
                ["block", "attempts", _] => {
                    cur_attempts.clear();
                }
                ["attempt", "cause", c, "cat", k, "faults", f, "draws", d, "allocs", rest @ ..] => {
                    let mut allocs = Vec::with_capacity(rest.len());
                    for w in rest {
                        allocs.push(w.parse::<u32>().map_err(|_| bad(n, "bad alloc size"))?);
                    }
                    cur_attempts.push(AttemptRecord {
                        cause: c.parse().map_err(|_| bad(n, "bad cause"))?,
                        category: k.parse().map_err(|_| bad(n, "bad category"))?,
                        faults: f.parse().map_err(|_| bad(n, "bad fault count"))?,
                        draws: d.parse().map_err(|_| bad(n, "bad draw count"))?,
                        allocs,
                    });
                }
                ["commit", kind, args @ ..] => {
                    let blocks =
                        cur_blocks.as_mut().ok_or_else(|| bad(n, "commit outside a thread"))?;
                    let outcome = match (*kind, args) {
                        ("hw", [o]) => {
                            BlockOutcome::Hw { order: o.parse().map_err(|_| bad(n, "bad order"))? }
                        }
                        ("cx", [o]) => BlockOutcome::Constrained {
                            order: o.parse().map_err(|_| bad(n, "bad order"))?,
                        },
                        ("stm", [o]) => {
                            BlockOutcome::Stm { order: o.parse().map_err(|_| bad(n, "bad order"))? }
                        }
                        ("rot", [o]) => {
                            BlockOutcome::Rot { order: o.parse().map_err(|_| bad(n, "bad order"))? }
                        }
                        ("sp", [o]) => BlockOutcome::Spilled {
                            order: o.parse().map_err(|_| bad(n, "bad order"))?,
                        },
                        ("irr", [o, d, t]) => BlockOutcome::Irrevocable {
                            order: o.parse().map_err(|_| bad(n, "bad order"))?,
                            degraded: *d == "1",
                            trip: *t == "1",
                        },
                        _ => return Err(bad(n, "bad commit line")),
                    };
                    blocks
                        .push(BlockRecord { attempts: std::mem::take(&mut cur_attempts), outcome });
                }
                [] => {}
                _ => return Err(bad(n, "unrecognized line")),
            }
        }
        if let Some(done) = cur_blocks.take() {
            per_thread.push(done);
        }
        if per_thread.len() != threads as usize {
            return Err(format!(
                "schedule trace declares {threads} threads but contains {}",
                per_thread.len()
            ));
        }
        Ok(ScheduleTrace { threads, seed, per_thread })
    }

    /// Writes the trace to `path` (text format).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a trace saved by [`ScheduleTrace::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed content surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<ScheduleTrace> {
        let text = std::fs::read_to_string(path)?;
        ScheduleTrace::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn per_thread_len(per_thread: &[Vec<BlockRecord>]) -> u32 {
    per_thread.len() as u32
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The global turnstile serializing replayed commits in recorded order.
#[derive(Clone, Debug)]
pub(crate) struct Turnstile {
    turn: Arc<AtomicU64>,
}

impl Turnstile {
    pub(crate) fn new() -> Turnstile {
        Turnstile { turn: Arc::new(AtomicU64::new(0)) }
    }

    /// Blocks until the global turn reaches `order`.
    ///
    /// # Panics
    ///
    /// Panics if the turnstile stalls (replay divergence: the recorded
    /// predecessor never committed).
    pub(crate) fn await_turn(&self, order: u64) {
        let start = std::time::Instant::now();
        let mut spins = 0u64;
        while self.turn.load(Ordering::SeqCst) != order {
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(30),
                    "replay diverged: turnstile stalled waiting for commit order {order}"
                );
            }
        }
    }

    pub(crate) fn advance(&self) {
        self.turn.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ScheduleTrace {
        ScheduleTrace::assemble(
            0xABCD,
            vec![
                vec![
                    BlockRecord {
                        attempts: vec![AttemptRecord {
                            cause: 2,
                            category: 1,
                            faults: 1,
                            draws: 3,
                            allocs: vec![4, 16],
                        }],
                        outcome: BlockOutcome::Hw { order: 10 },
                    },
                    BlockRecord {
                        attempts: vec![],
                        outcome: BlockOutcome::Irrevocable {
                            order: 17,
                            degraded: true,
                            trip: true,
                        },
                    },
                ],
                vec![
                    BlockRecord {
                        attempts: vec![],
                        outcome: BlockOutcome::Constrained { order: 12 },
                    },
                    BlockRecord { attempts: vec![], outcome: BlockOutcome::Stm { order: 14 } },
                    BlockRecord { attempts: vec![], outcome: BlockOutcome::Rot { order: 15 } },
                    BlockRecord { attempts: vec![], outcome: BlockOutcome::Spilled { order: 16 } },
                ],
            ],
        )
    }

    #[test]
    fn assemble_renumbers_commit_stamps_densely() {
        let t = sample_trace();
        let mut orders: Vec<u64> =
            (0..t.threads()).flat_map(|i| t.thread_blocks(i)).map(|b| b.outcome.order()).collect();
        orders.sort_unstable();
        assert_eq!(orders, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.blocks(), 6);
        assert_eq!(t.aborted_attempts(), 1);
    }

    #[test]
    fn text_round_trip_is_identity() {
        let t = sample_trace();
        let text = t.to_text();
        let back = ScheduleTrace::from_text(&text).expect("parse");
        assert_eq!(t, back);
    }

    #[test]
    fn save_load_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("htm-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        t.save(&path).unwrap();
        let back = ScheduleTrace::load(&path).unwrap();
        assert_eq!(t, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ScheduleTrace::from_text("").is_err());
        assert!(ScheduleTrace::from_text("htm-schedule-trace v2\nthreads 1 seed 0").is_err());
        assert!(ScheduleTrace::from_text("htm-schedule-trace v1\nthreads 2 seed 0x5\n").is_err());
        let garbage = "htm-schedule-trace v1\nthreads 1 seed 1\nthread 0 blocks 1\nwat\n";
        assert!(ScheduleTrace::from_text(garbage).is_err());
    }

    #[test]
    fn turnstile_orders_turns() {
        let t = Turnstile::new();
        t.await_turn(0);
        t.advance();
        t.await_turn(1);
    }
}
