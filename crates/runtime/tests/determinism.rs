//! Determinism regression tests (DESIGN.md §5).
//!
//! Two guarantees are pinned here:
//!
//! 1. With the empty fault plan and disjoint per-thread data, repeated runs
//!    of the same configuration are bit-identical in every
//!    schedule-independent counter and in the final memory image.
//! 2. A run recorded under a seeded fault plan replays bit-identically from
//!    its [`ScheduleTrace`]: same commits, aborts, injected faults,
//!    watchdog trips, and the same memory digest — including after a
//!    save/load round trip of the trace through disk.

use htm_core::WordAddr;
use htm_machine::Platform;
use htm_runtime::{
    FallbackPolicy, FaultPlan, RetryPolicy, RunStats, ScheduleTrace, Sim, SimConfig, ThreadCtx,
    WatchdogConfig,
};

/// One thread's schedule-independent counters: commits (hardware,
/// irrevocable), the five abort classes, injected faults, watchdog trips,
/// degraded commits, and the software-tier triple (STM commits, STM
/// validation aborts, ROT commits).
type CounterRow = (u64, u64, [u64; 5], u64, u64, u64, [u64; 3]);

/// The schedule-independent slice of the statistics: everything except the
/// simulated clocks and lock-wait times, which legitimately vary with OS
/// scheduling.
fn deterministic_counters(stats: &RunStats) -> Vec<CounterRow> {
    stats
        .threads
        .iter()
        .map(|t| {
            (
                t.hw_commits,
                t.irrevocable_commits,
                t.aborts,
                t.injected_faults,
                t.watchdog_trips,
                t.degraded_commits,
                [t.stm_commits, t.stm_validation_aborts, t.rot_commits],
            )
        })
        .collect()
}

#[test]
fn empty_fault_plan_runs_are_bit_identical_across_three_runs() {
    let run = || {
        let cfg = SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).seed(0xD5EED);
        let sim = Sim::new(cfg);
        // One isolated line per thread, pre-allocated before the parallel
        // phase, eight lines apart: Intel's streamer prefetches two lines
        // past a confirmed stride (and the lock-line-then-data-line access
        // pattern confirms one), so narrow spacing would let one thread's
        // prefetch land in the other's write set and race.
        let base = sim.alloc().alloc_aligned(2 * 64, 64);
        let stats = sim.run_parallel(2, RetryPolicy::default(), |ctx| {
            let a = base.offset(64 * ctx.thread_id());
            for i in 0..400u64 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v.wrapping_mul(31).wrapping_add(i))
                });
            }
        });
        (deterministic_counters(&stats), sim.memory_digest())
    };
    let first = run();
    assert_eq!(first, run());
    assert_eq!(first, run());
}

fn contended_sim(plan: FaultPlan, watchdog: WatchdogConfig) -> (Sim, WordAddr) {
    let cfg = SimConfig::new(Platform::IntelCore.config())
        .mem_words(1 << 18)
        .seed(0x7EC0)
        .faults(plan)
        .watchdog(watchdog);
    let sim = Sim::new(cfg);
    // Eight words on one conflict-detection line: every block conflicts.
    let base = sim.alloc().alloc_aligned(8, 64);
    (sim, base)
}

/// Schedule-sensitive workload: each block mixes the thread id into a
/// randomly chosen shared word, so the final memory image depends on the
/// exact commit interleaving — which is exactly what replay must reproduce.
/// The in-transaction RNG draw also exercises the recorded draw-skip logic
/// for aborted attempts.
fn contended_work(base: WordAddr) -> impl Fn(&mut ThreadCtx) + Sync {
    move |ctx: &mut ThreadCtx| {
        let tid = ctx.thread_id() as u64;
        for _ in 0..150 {
            ctx.atomic(|tx| {
                let idx = rand::Rng::gen_range(tx.rng(), 0..8u32);
                let v = tx.load(base.offset(idx))?;
                tx.store(base.offset(idx), v.wrapping_mul(31).wrapping_add(tid + 1))
            });
        }
    }
}

#[test]
fn recorded_fault_injected_run_replays_bit_identically() {
    let plan = FaultPlan::none()
        .transient_abort_per_begin(0.2)
        .capacity_abort_per_begin(0.05)
        .doom_at_commit(0.05);

    let (sim, base) = contended_sim(plan, WatchdogConfig::default());
    let (recorded, trace) =
        sim.record_parallel(4, RetryPolicy::default(), contended_work(base)).expect("record");
    let recorded_digest = sim.memory_digest();
    assert!(recorded.injected_faults() > 0, "the plan must actually fire");
    assert!(trace.blocks() == 600, "150 blocks x 4 threads");
    assert_eq!(trace.aborted_attempts() as u64, recorded.total_aborts());

    // Round-trip the trace through disk before replaying it.
    let path = std::env::temp_dir().join("htm-determinism-replay-trace.txt");
    trace.save(&path).expect("save trace");
    let trace = ScheduleTrace::load(&path).expect("load trace");
    let _ = std::fs::remove_file(&path);

    let (sim2, base2) = contended_sim(plan, WatchdogConfig::default());
    assert_eq!(base, base2, "identical setup must allocate identically");
    let replayed =
        sim2.replay(&trace, RetryPolicy::default(), contended_work(base2)).expect("replay");

    assert_eq!(deterministic_counters(&recorded), deterministic_counters(&replayed));
    assert_eq!(recorded_digest, sim2.memory_digest(), "memory images must match");
}

#[test]
fn watchdog_trips_and_degraded_blocks_replay_faithfully() {
    // 100% abort storm + huge retry budget: progress comes only from
    // watchdog trips and degraded execution — the rarest paths in the
    // retry machine, all of which must round-trip through the trace.
    let plan = FaultPlan::none().transient_abort_per_begin(1.0);
    let watchdog = WatchdogConfig { starvation_bound: 16, degraded_blocks: 4, escalation_cap: 3 };

    let (sim, base) = contended_sim(plan, watchdog);
    let (recorded, trace) = sim
        .record_parallel(2, RetryPolicy::uniform(1_000_000), contended_work(base))
        .expect("record");
    let recorded_digest = sim.memory_digest();
    assert!(recorded.watchdog_trips() > 0, "the storm must trip the watchdog");
    assert_eq!(recorded.hw_commits(), 0);

    let (sim2, base2) = contended_sim(plan, watchdog);
    let replayed = sim2
        .replay(&trace, RetryPolicy::uniform(1_000_000), contended_work(base2))
        .expect("replay");

    assert_eq!(deterministic_counters(&recorded), deterministic_counters(&replayed));
    assert_eq!(recorded_digest, sim2.memory_digest());
}

#[test]
fn replay_rejects_a_mismatched_workload() {
    let (sim, base) = contended_sim(FaultPlan::none(), WatchdogConfig::default());
    let (_, trace) =
        sim.record_parallel(2, RetryPolicy::default(), contended_work(base)).expect("record");

    // A workload that executes no atomic blocks leaves every recorded
    // block unconsumed — reported as divergence, not silently accepted.
    let (sim2, _) = contended_sim(FaultPlan::none(), WatchdogConfig::default());
    let err = sim2.replay(&trace, RetryPolicy::default(), |_ctx: &mut ThreadCtx| {}).unwrap_err();
    assert!(err.to_string().contains("replay diverged"), "{err}");

    // A workload that executes more atomic blocks than the trace recorded
    // runs off the end of its decision stream.
    let (sim3, base3) = contended_sim(FaultPlan::none(), WatchdogConfig::default());
    let err = sim3
        .replay(&trace, RetryPolicy::default(), |ctx: &mut ThreadCtx| {
            contended_work(base3)(ctx);
            ctx.atomic(|tx| {
                let v = tx.load(base3)?;
                tx.store(base3, v + 1)
            });
        })
        .unwrap_err();
    assert!(err.to_string().contains("replay diverged"), "{err}");
}

#[test]
fn software_fallback_runs_replay_bit_identically() {
    // The hybrid tiers round-trip through the trace: recorded STM (and,
    // on POWER8, ROT) blocks replay as software commits with identical
    // counters and memory image, trace disk round trip included.
    for (platform, fallback) in
        [(Platform::IntelCore, FallbackPolicy::Stm), (Platform::Power8, FallbackPolicy::Rot)]
    {
        let plan = FaultPlan::none().transient_abort_per_begin(0.4).doom_at_commit(0.05);
        let make = || {
            let cfg = SimConfig::new(platform.config())
                .mem_words(1 << 18)
                .seed(0x50F7)
                .faults(plan)
                .fallback(fallback);
            let sim = Sim::new(cfg);
            let base = sim.alloc().alloc_aligned(8, 64);
            (sim, base)
        };

        let (sim, base) = make();
        let (recorded, trace) =
            sim.record_parallel(4, RetryPolicy::uniform(1), contended_work(base)).expect("record");
        let recorded_digest = sim.memory_digest();
        let soft = match fallback {
            FallbackPolicy::Rot => recorded.rot_commits(),
            _ => recorded.stm_commits(),
        };
        assert!(soft > 0, "{platform} {fallback}: the software tier must actually commit");

        let path =
            std::env::temp_dir().join(format!("htm-determinism-{}-trace.txt", fallback.key()));
        trace.save(&path).expect("save trace");
        let trace = ScheduleTrace::load(&path).expect("load trace");
        let _ = std::fs::remove_file(&path);

        let (sim2, base2) = make();
        assert_eq!(base, base2);
        let replayed =
            sim2.replay(&trace, RetryPolicy::uniform(1), contended_work(base2)).expect("replay");
        assert_eq!(
            deterministic_counters(&recorded),
            deterministic_counters(&replayed),
            "{platform} {fallback}"
        );
        assert_eq!(recorded_digest, sim2.memory_digest(), "{platform} {fallback}");
    }
}

#[test]
fn certified_record_and_replay_both_certify_clean() {
    // Certification composes with record/replay: the recorded schedule and
    // its serialized replay must both be conflict-serializable.
    let cfg =
        SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).seed(0xCE47).certify(true);
    let sim = Sim::new(cfg.clone());
    let base = sim.alloc().alloc_aligned(8, 64);
    let (recorded, trace) =
        sim.record_parallel(4, RetryPolicy::default(), contended_work(base)).expect("record");
    let report = recorded.certify.as_ref().expect("certifier on");
    assert!(report.ok(), "{report}");

    let sim2 = Sim::new(cfg);
    let base2 = sim2.alloc().alloc_aligned(8, 64);
    let replayed =
        sim2.replay(&trace, RetryPolicy::default(), contended_work(base2)).expect("replay");
    let report = replayed.certify.as_ref().expect("certifier on");
    assert!(report.ok(), "{report}");
    assert_eq!(sim.memory_digest(), sim2.memory_digest());
}
