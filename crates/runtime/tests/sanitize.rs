//! Integration tests for the happens-before race sanitizer
//! (`SimConfig::sanitize`).
//!
//! Two obligations:
//!
//! 1. **Sensitivity** — a deliberately racy workload (unsynchronized
//!    non-transactional accesses, and a non-transactional write racing a
//!    transactional reader) must be flagged.
//! 2. **Specificity** — race-free workloads must stay clean: all-atomic
//!    counters, irrevocable fallbacks ordered by the global lock, a
//!    fault-storm run that serializes heavily, and the same storm under
//!    record/replay. False positives would make the lint gate useless.

use htm_machine::Platform;
use htm_runtime::{FallbackPolicy, FaultPlan, RetryPolicy, Sim, SimConfig};

fn sanitized(p: Platform) -> Sim {
    Sim::new(SimConfig::new(p.config()).mem_words(1 << 18).sanitize(true))
}

#[test]
fn unsynchronized_nontx_writes_are_flagged() {
    let s = sanitized(Platform::IntelCore);
    let a = s.alloc().alloc(1);
    let stats = s.run_parallel(2, RetryPolicy::default(), |ctx| {
        // Both threads blindly store to the same word outside any atomic
        // block: a textbook write-write race.
        ctx.write_word(a, ctx.thread_id() as u64 + 1);
    });
    let report = stats.race.expect("sanitizer was on");
    assert!(!report.ok(), "racy workload must be flagged");
    assert!(
        report.races.iter().any(|r| r.addr == a && r.a.write && r.b.write),
        "the race must name the contested word: {report}"
    );
}

#[test]
fn nontx_write_racing_transactional_reader_is_flagged() {
    let s = sanitized(Platform::IntelCore);
    let a = s.alloc().alloc(1);
    let stats = s.run_parallel(2, RetryPolicy::default(), |ctx| {
        if ctx.thread_id() == 0 {
            // Thread 0 updates the word transactionally.
            for _ in 0..50 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        } else {
            // Thread 1 peeks at it with a plain load: unsynchronized
            // against the commits, even though each commit is atomic.
            for _ in 0..50 {
                let _ = ctx.read_word(a);
            }
        }
    });
    let report = stats.race.expect("sanitizer was on");
    assert!(!report.ok(), "non-tx read vs tx write must be flagged");
    assert!(
        report.races.iter().any(|r| r.addr == a && (r.a.tx != r.b.tx)),
        "the race must pair a transactional and a non-transactional access: {report}"
    );
}

#[test]
fn all_transactional_counter_is_clean_on_every_platform() {
    for p in Platform::ALL {
        let s = sanitized(p);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..300 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 1200, "{p}");
        let report = stats.race.expect("sanitizer was on");
        assert!(report.ok(), "{p}: atomic counter must be race-free:\n{report}");
    }
}

#[test]
fn irrevocable_fallbacks_are_ordered_by_the_lock() {
    // Zero retries: every block falls back to the global lock, so every
    // access is an irrevocable (transactional-side) access ordered by the
    // lock's release/acquire edges.
    let s = sanitized(Platform::IntelCore);
    let a = s.alloc().alloc(1);
    let stats = s.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
        for _ in 0..100 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(s.read_word(a), 400);
    assert!(stats.irrevocable_commits() > 0, "zero retries must serialize");
    let report = stats.race.expect("sanitizer was on");
    assert!(report.ok(), "lock-ordered irrevocable sections must be race-free:\n{report}");
}

#[test]
fn racefree_fault_storm_stays_clean() {
    // Heavy injected aborts force rollbacks, retries, degraded blocks and
    // irrevocable fallbacks — every capture path at once. None of it is a
    // data race, and none of it may be reported as one.
    let plan = FaultPlan::none()
        .transient_abort_per_begin(0.3)
        .capacity_abort_per_begin(0.1)
        .transient_abort_per_access(0.05)
        .doom_at_commit(0.2)
        .lock_release_delay(100);
    for p in Platform::ALL {
        let s = Sim::new(SimConfig::new(p.config()).mem_words(1 << 18).sanitize(true).faults(plan));
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            for _ in 0..200 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(s.read_word(a), 800, "{p}: faults must not corrupt results");
        assert!(stats.injected_faults() > 0, "{p}: the storm must fire");
        let report = stats.race.expect("sanitizer was on");
        assert!(report.ok(), "{p}: fault storm must not fabricate races:\n{report}");
    }
}

#[test]
fn record_and_replay_of_a_fault_storm_stay_clean() {
    let plan = FaultPlan::none().transient_abort_per_begin(0.4).doom_at_commit(0.2);
    let cfg =
        SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).sanitize(true).faults(plan);
    let work = |ctx: &mut htm_runtime::ThreadCtx| {
        let a = htm_core::WordAddr(1 << 12);
        for _ in 0..150 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    };

    let rec_sim = Sim::new(cfg.clone());
    let (rec_stats, trace) =
        rec_sim.record_parallel(2, RetryPolicy::default(), work).expect("record run");
    let rec_report = rec_stats.race.expect("sanitizer was on");
    assert!(rec_report.ok(), "recorded storm must be race-free:\n{rec_report}");

    let rep_sim = Sim::new(cfg);
    let rep_stats = rep_sim.replay(&trace, RetryPolicy::default(), work).expect("replay run");
    let rep_report = rep_stats.race.expect("sanitizer was on");
    assert!(rep_report.ok(), "replayed storm must be race-free:\n{rep_report}");
    assert_eq!(rec_sim.memory_digest(), rep_sim.memory_digest(), "replay must be faithful");
}

#[test]
fn conflict_aborts_are_attributed_to_their_aggressor() {
    let s = sanitized(Platform::IntelCore);
    let a = s.alloc().alloc(1);
    let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
        for _ in 0..1000 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(s.read_word(a), 4000);
    let events: Vec<_> = stats.conflicts().collect();
    assert!(!events.is_empty(), "a hot word at 4 threads must produce attributed conflicts");
    let line = s.mem().line_of(a);
    assert!(
        events.iter().any(|e| e.line == line),
        "conflicts must name the hot line {line:?}: {events:?}"
    );
    for e in &events {
        assert_ne!(Some(e.victim), e.aggressor, "no transaction dooms itself");
        assert!(e.victim < 4);
        if let Some(aggr) = e.aggressor {
            assert!(aggr < 4);
        }
    }
}

#[test]
fn software_fallback_tiers_stay_race_free() {
    // STM commits write back under the fallback lock while hardware
    // transactions run concurrently; the happens-before model must order
    // all of it (a false positive here would poison the HyTM lint gate).
    for (platform, fallback) in [
        (Platform::IntelCore, FallbackPolicy::Stm),
        (Platform::Power8, FallbackPolicy::Stm),
        (Platform::Power8, FallbackPolicy::Rot),
    ] {
        let s = Sim::new(
            SimConfig::new(platform.config())
                .mem_words(1 << 18)
                .sanitize(true)
                .fallback(fallback)
                .faults(FaultPlan::none().transient_abort_per_begin(0.5)),
        );
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
            for _ in 0..200 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        let report = stats.race.as_ref().expect("sanitizer was on");
        assert!(report.ok(), "{platform} {fallback}: false positive:\n{report}");
        assert_eq!(s.read_word(a), 800, "{platform} {fallback}");
        let soft = match fallback {
            FallbackPolicy::Rot => stats.rot_commits(),
            _ => stats.stm_commits(),
        };
        assert!(soft > 0, "{platform} {fallback}: software tier must engage");
    }
}

#[test]
fn sanitizer_off_means_no_report_and_no_events() {
    let s = Sim::new(SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18));
    let a = s.alloc().alloc(1);
    let stats = s.run_parallel(2, RetryPolicy::default(), |ctx| {
        ctx.write_word(a, ctx.thread_id() as u64);
    });
    assert!(stats.race.is_none(), "no report without sanitize");
    assert_eq!(stats.conflicts().count(), 0);
}
