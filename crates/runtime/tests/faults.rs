//! Property tests for fault injection and the progress guarantees of the
//! retry mechanism (DESIGN.md §4).
//!
//! The properties, over *random* fault plans:
//!
//! 1. **Termination** — every run completes: the retry machine plus the
//!    irrevocable fallback (and, for pathological retry budgets, the
//!    watchdog) guarantee progress no matter what the plan injects.
//! 2. **Correctness under faults** — injected aborts never corrupt results:
//!    a contended counter ends exactly at its expected value, and every
//!    block commits exactly once.
//! 3. **Opacity** — no transaction (committed or doomed) observes a state
//!    in which a two-word invariant is torn.
//! 4. **Empty plan is free** — a run configured with `FaultPlan::none()`
//!    is indistinguishable from a run with no plan at all.

use std::sync::atomic::{AtomicBool, Ordering};

use htm_machine::Platform;
use htm_runtime::{FaultPlan, RetryPolicy, Sim, SimConfig, WatchdogConfig};
use proptest::prelude::*;

fn platform(idx: u8) -> Platform {
    Platform::ALL[idx as usize % Platform::ALL.len()]
}

/// A random fault plan. Probabilities are kept below 1 for the per-begin
/// and per-access streams so hardware commits stay *possible* (the
/// always-abort regime gets its own dedicated tests).
fn plan(
    (seed, tb, cb, sb, ss, ta, dc, drain, delay): (u64, f64, f64, f64, f64, f64, f64, u32, u64),
) -> FaultPlan {
    FaultPlan::none()
        .seed(seed)
        .transient_abort_per_begin(tb * 0.6)
        .capacity_abort_per_begin(cb * 0.6)
        .spec_id_abort_per_begin(sb * 0.5)
        .spec_id_stall_per_begin(ss)
        .transient_abort_per_access(ta * 0.3)
        .doom_at_commit(dc * 0.5)
        .spec_id_drain(drain)
        .lock_release_delay(delay)
}

fn plan_strategy() -> impl Strategy<Value = (u64, f64, f64, f64, f64, f64, f64, u32, u64)> {
    (
        (any::<u64>(), 0.0..1.0, 0.0..1.0, 0.0..1.0),
        (0.0..1.0, 0.0..1.0, 0.0..1.0),
        (0u32..128, 0u64..2000),
    )
        .prop_map(|((seed, tb, cb, sb), (ss, ta, dc), (drain, delay))| {
            (seed, tb, cb, sb, ss, ta, dc, drain, delay)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plans on random platforms terminate with exact results.
    #[test]
    fn random_plans_terminate_with_correct_results(
        raw in plan_strategy(),
        pidx in 0u8..4,
        threads in 1u32..5,
    ) {
        let p = platform(pidx);
        let s = Sim::new(
            SimConfig::new(p.config()).mem_words(1 << 18).faults(plan(raw)),
        );
        let a = s.alloc().alloc(1);
        let per_thread = 60u64;
        let stats = s.run_parallel(threads, RetryPolicy::default(), |ctx| {
            for _ in 0..per_thread {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        let expected = per_thread * threads as u64;
        prop_assert_eq!(s.read_word(a), expected);
        prop_assert_eq!(stats.committed_blocks(), expected);
    }

    /// No transaction — committed or doomed — ever reads a torn state:
    /// two words updated together always sum to the same total inside
    /// every successful pair of loads.
    #[test]
    fn random_plans_preserve_opacity(
        raw in plan_strategy(),
        pidx in 0u8..4,
    ) {
        const TOTAL: u64 = 1000;
        let p = platform(pidx);
        let s = Sim::new(
            SimConfig::new(p.config()).mem_words(1 << 18).faults(plan(raw)),
        );
        // Two words on distinct conflict-granularity lines, moved in
        // lockstep: x + y == TOTAL is the opacity probe.
        let g = p.config().granularity.max(64);
        let x = s.alloc().alloc_aligned(1, g);
        let y = s.alloc().alloc_aligned(1, g);
        s.write_word(x, TOTAL);
        let torn = AtomicBool::new(false);
        let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
            let tid = ctx.thread_id() as u64;
            for i in 0..50u64 {
                ctx.atomic(|tx| {
                    let vx = tx.load(x)?;
                    let vy = tx.load(y)?;
                    if vx + vy != TOTAL {
                        torn.store(true, Ordering::SeqCst);
                    }
                    let amount = (tid * 13 + i) % 7;
                    let moved = amount.min(vx);
                    tx.store(x, vx - moved)?;
                    tx.store(y, vy + moved)
                });
            }
        });
        prop_assert!(!torn.load(Ordering::SeqCst), "a transaction observed a torn invariant");
        prop_assert_eq!(s.read_word(x) + s.read_word(y), TOTAL);
        prop_assert_eq!(stats.committed_blocks(), 200);
    }

    /// Always-abort storms terminate on every platform even with retry
    /// budgets that would otherwise spin for ~a million attempts: the
    /// watchdog degrades execution to the global lock.
    #[test]
    fn abort_storms_terminate_under_any_watchdog(
        bound in 1u32..40,
        degraded in 0u32..16,
        pidx in 0u8..4,
    ) {
        let p = platform(pidx);
        let cfg = SimConfig::new(p.config())
            .mem_words(1 << 18)
            .faults(FaultPlan::none().transient_abort_per_begin(1.0))
            .watchdog(WatchdogConfig {
                starvation_bound: bound,
                degraded_blocks: degraded,
                escalation_cap: 3,
            });
        let s = Sim::new(cfg);
        let a = s.alloc().alloc(1);
        let stats = s.run_parallel(2, RetryPolicy::uniform(1_000_000), |ctx| {
            for _ in 0..20 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        prop_assert_eq!(s.read_word(a), 40);
        prop_assert_eq!(stats.hw_commits(), 0);
        prop_assert_eq!(stats.irrevocable_commits(), 40);
        prop_assert!(stats.watchdog_trips() >= 1);
    }

    /// An explicitly-set empty plan changes nothing: same commits, same
    /// results, zero injected faults.
    #[test]
    fn empty_plan_is_indistinguishable(seed in any::<u64>()) {
        let run = |explicit: bool| {
            let mut cfg =
                SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).seed(seed);
            if explicit {
                cfg = cfg.faults(FaultPlan::none());
            }
            let s = Sim::new(cfg);
            let a = s.alloc().alloc(1);
            let stats = s.run_parallel(2, RetryPolicy::default(), |ctx| {
                for _ in 0..100 {
                    ctx.atomic(|tx| {
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)
                    });
                }
            });
            (s.read_word(a), stats.committed_blocks(), stats.injected_faults())
        };
        prop_assert_eq!(run(false), run(true));
    }
}

/// The zEC12 constrained path is exempt from injection and still commits
/// everything in hardware under an otherwise total abort storm.
#[test]
fn constrained_transactions_survive_total_storms() {
    let plan = FaultPlan::none()
        .transient_abort_per_begin(1.0)
        .transient_abort_per_access(1.0)
        .doom_at_commit(1.0);
    let s = Sim::new(SimConfig::new(Platform::Zec12.config()).mem_words(1 << 18).faults(plan));
    let a = s.alloc().alloc_aligned(1, 256);
    let stats = s.run_parallel(4, RetryPolicy::default(), |ctx| {
        for _ in 0..100 {
            ctx.atomic_constrained(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(s.read_word(a), 400);
    assert_eq!(stats.hw_commits(), 400);
    assert_eq!(stats.injected_faults(), 0, "constrained txs must never be injected");
}

/// Sequential baselines are never fault-injected, whatever the plan says.
#[test]
fn sequential_baseline_is_never_injected() {
    let plan = FaultPlan::none().transient_abort_per_begin(1.0).doom_at_commit(1.0);
    let s = Sim::new(SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 18).faults(plan));
    let a = s.alloc().alloc(1);
    let cycles = s.run_sequential(|ctx| {
        for _ in 0..50 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(s.read_word(a), 50);
    assert!(cycles > 0);
}
