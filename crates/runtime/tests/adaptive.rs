//! Integration tests for the adaptive contention manager (DESIGN.md §9):
//! tier selection from live abort feedback, POWER8 capacity spilling,
//! storm-proof degradation, and record/replay of adaptive runs.

use htm_core::WordAddr;
use htm_machine::Platform;
use htm_runtime::{
    FallbackPolicy, FaultPlan, RetryPolicy, RunStats, ScheduleTrace, Sim, SimConfig, ThreadCtx,
    WatchdogConfig,
};

/// The schedule-independent counters an adaptive replay must reproduce.
/// The controller-side telemetry (tier switches, backoff cycles, rescues)
/// is deliberately absent: replay follows recorded outcomes and never runs
/// the controller.
#[allow(clippy::type_complexity)]
fn replay_counters(stats: &RunStats) -> Vec<(u64, u64, [u64; 5], u64, u64, u64, [u64; 4])> {
    stats
        .threads
        .iter()
        .map(|t| {
            (
                t.hw_commits,
                t.irrevocable_commits,
                t.aborts,
                t.injected_faults,
                t.watchdog_trips,
                t.degraded_commits,
                [t.stm_commits, t.stm_validation_aborts, t.rot_commits, t.spill_commits],
            )
        })
        .collect()
}

/// Increment-only storm workload: exactness of the final sum witnesses
/// that no tier of the adaptive ladder loses updates.
fn run_adaptive_storm(platform: Platform, plan: FaultPlan) -> RunStats {
    let sim = Sim::new(
        SimConfig::new(platform.config())
            .mem_words(1 << 18)
            .fallback(FallbackPolicy::Adaptive)
            .faults(plan),
    );
    let counters = sim.alloc().alloc_aligned(8, 64);
    let stats = sim.run_parallel(4, RetryPolicy::uniform(1), move |ctx| {
        let t = ctx.thread_id() as u64;
        for i in 0..200u64 {
            ctx.atomic(|tx| {
                let a = counters.offset(((i * 3 + t) % 8) as u32);
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    let total: u64 = (0..8).map(|i| sim.read_word(counters.offset(i))).sum();
    assert_eq!(total, 4 * 200, "{platform} adaptive: lost updates under fault storm");
    assert_eq!(stats.committed_blocks(), 4 * 200, "{platform} adaptive: uncommitted blocks");
    stats
}

#[test]
fn adaptive_fault_storms_lose_no_updates_on_any_platform() {
    for platform in Platform::ALL {
        let plan = FaultPlan::none()
            .seed(0xAD4B7)
            .transient_abort_per_begin(0.5)
            .capacity_abort_per_begin(0.1)
            .lock_release_delay(300);
        run_adaptive_storm(platform, plan);
    }
}

#[test]
fn adaptive_controller_switches_tiers_and_backs_off_under_contention() {
    // A sustained conflict storm on one hot line must make the controller
    // actually move (the whole point of the adaptive policy) and must
    // exercise the capped randomized backoff.
    let plan = FaultPlan::none().seed(0x5117C).transient_abort_per_begin(0.8);
    let sim = Sim::new(
        SimConfig::new(Platform::IntelCore.config())
            .mem_words(1 << 18)
            .fallback(FallbackPolicy::Adaptive)
            .faults(plan),
    );
    let a = sim.alloc().alloc(1);
    let stats = sim.run_parallel(4, RetryPolicy::uniform(4), move |ctx| {
        for _ in 0..300 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(sim.read_word(a), 4 * 300);
    assert!(stats.tier_switches() > 0, "the controller never changed tier under the storm");
    assert!(stats.backoff_cycles() > 0, "granted retries must accumulate backoff");
}

#[test]
fn adaptive_storm_trips_are_bounded_by_the_starvation_bound() {
    // A 100% per-begin abort storm with an effectively unbounded retry
    // budget: only the watchdog's starvation bound can end a block's
    // hardware attempts, and only the controller's rescue-to-lock keeps
    // the run from livelocking. Every block still commits, and the trip
    // count respects the arithmetic bound: each trip costs the tripped
    // block plus `degraded_blocks` forced-irrevocable blocks, so a thread
    // of `n` blocks can trip at most `ceil(n / (1 + degraded_blocks))`
    // times.
    for platform in [Platform::IntelCore, Platform::Power8] {
        let plan = FaultPlan::none().seed(0x570B).transient_abort_per_begin(1.0);
        let watchdog =
            WatchdogConfig { starvation_bound: 16, degraded_blocks: 4, escalation_cap: 3 };
        let sim = Sim::new(
            SimConfig::new(platform.config())
                .mem_words(1 << 18)
                .fallback(FallbackPolicy::Adaptive)
                .faults(plan)
                .watchdog(watchdog),
        );
        let a = sim.alloc().alloc(1);
        let blocks_per_thread = 150u64;
        let stats = sim.run_parallel(2, RetryPolicy::uniform(1_000_000), move |ctx| {
            for _ in 0..blocks_per_thread {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        assert_eq!(sim.read_word(a), 2 * blocks_per_thread, "{platform}: lost updates");
        assert_eq!(stats.committed_blocks(), 2 * blocks_per_thread, "{platform}");
        assert!(stats.watchdog_trips() > 0, "{platform}: the storm must trip the watchdog");
        let per_thread_bound = blocks_per_thread.div_ceil(1 + watchdog.degraded_blocks as u64);
        assert!(
            stats.watchdog_trips() <= 2 * per_thread_bound,
            "{platform}: {} trips exceed the starvation bound's arithmetic limit {}",
            stats.watchdog_trips(),
            2 * per_thread_bound
        );
        assert!(
            stats.adapt_starvation_rescues() > 0
                && stats.adapt_starvation_rescues() <= stats.watchdog_trips(),
            "{platform}: rescues ({}) must be positive and within trips ({})",
            stats.adapt_starvation_rescues(),
            stats.watchdog_trips()
        );
    }
}

#[test]
fn capacity_doomed_blocks_commit_by_spilling_on_power8() {
    // 96 distinct conflict-detection lines per transaction — half again
    // the 64-entry TMCAM — so plain hardware attempts are capacity-doomed.
    // Under the adaptive policy the block escalates to the spill tier and
    // commits partial-hardware; the final memory must be bit-identical to
    // the same workload driven through the unspilled lock fallback.
    const LINES: u32 = 96;
    let cfg = Platform::Power8.config();
    let words_per_line = cfg.granularity / 8;
    let run = |fallback: FallbackPolicy| {
        let sim = Sim::new(
            SimConfig::new(Platform::Power8.config()).mem_words(1 << 20).fallback(fallback),
        );
        let base = sim.alloc().alloc_aligned(LINES * words_per_line, cfg.granularity);
        let stats = sim.run_parallel(1, RetryPolicy::default(), move |ctx| {
            for _ in 0..20 {
                ctx.atomic(|tx| {
                    for line in 0..LINES {
                        let a = base.offset(line * words_per_line);
                        let v = tx.load(a)?;
                        tx.store(a, v + 1)?;
                    }
                    Ok(())
                });
            }
        });
        for line in 0..LINES {
            assert_eq!(
                sim.read_word(base.offset(line * words_per_line)),
                20,
                "{fallback}: line {line} lost increments"
            );
        }
        (stats, sim.memory_digest())
    };

    let (adaptive, adaptive_digest) = run(FallbackPolicy::Adaptive);
    assert!(adaptive.spill_commits() > 0, "capacity-doomed blocks never took the spill tier");
    assert!(adaptive.capacity_spills() > 0, "the spill tier never actually spilled a line");

    let (locked, lock_digest) = run(FallbackPolicy::Lock);
    assert_eq!(locked.spill_commits(), 0);
    assert_eq!(adaptive_digest, lock_digest, "spilled commits diverged from unspilled memory");
}

fn contended_work(base: WordAddr) -> impl Fn(&mut ThreadCtx) + Sync {
    move |ctx: &mut ThreadCtx| {
        let tid = ctx.thread_id() as u64;
        for _ in 0..150 {
            ctx.atomic(|tx| {
                let idx = rand::Rng::gen_range(tx.rng(), 0..8u32);
                let v = tx.load(base.offset(idx))?;
                tx.store(base.offset(idx), v.wrapping_mul(31).wrapping_add(tid + 1))
            });
        }
    }
}

#[test]
fn adaptive_storm_record_replay_is_bit_identical() {
    // The adaptive tiers round-trip through the schedule trace: recorded
    // hardware, spilled, software and irrevocable blocks all replay with
    // identical counters and memory image, trace disk round trip included.
    for platform in [Platform::IntelCore, Platform::Power8] {
        let plan = FaultPlan::none()
            .seed(0x4EC0)
            .transient_abort_per_begin(0.4)
            .capacity_abort_per_begin(0.2)
            .doom_at_commit(0.05);
        let make = || {
            let cfg = SimConfig::new(platform.config())
                .mem_words(1 << 18)
                .seed(0xADA9)
                .faults(plan)
                .fallback(FallbackPolicy::Adaptive);
            let sim = Sim::new(cfg);
            let base = sim.alloc().alloc_aligned(8, 64);
            (sim, base)
        };

        let (sim, base) = make();
        let (recorded, trace) =
            sim.record_parallel(4, RetryPolicy::uniform(1), contended_work(base)).expect("record");
        let recorded_digest = sim.memory_digest();
        assert!(recorded.injected_faults() > 0, "{platform}: the plan must actually fire");
        if platform == Platform::Power8 {
            assert!(
                recorded.spill_commits() > 0,
                "{platform}: injected capacity aborts must drive blocks through the spill tier"
            );
        }

        let path = std::env::temp_dir().join(format!("htm-adaptive-replay-{platform}.txt"));
        trace.save(&path).expect("save trace");
        let trace = ScheduleTrace::load(&path).expect("load trace");
        let _ = std::fs::remove_file(&path);

        let (sim2, base2) = make();
        assert_eq!(base, base2, "identical setup must allocate identically");
        let replayed =
            sim2.replay(&trace, RetryPolicy::uniform(1), contended_work(base2)).expect("replay");

        assert_eq!(replay_counters(&recorded), replay_counters(&replayed), "{platform}");
        assert_eq!(recorded_digest, sim2.memory_digest(), "{platform}: memory images must match");
    }
}

#[test]
fn adaptive_runs_certify_serializable_and_race_free() {
    // The robustness stack holds under the adaptive policy: committed
    // blocks (including spilled ones) feed the serializability certifier,
    // and the race sanitizer sees the spill tier's lock-ordered commits.
    for platform in [Platform::IntelCore, Platform::Power8] {
        let plan = FaultPlan::none()
            .seed(0xCE47)
            .transient_abort_per_begin(0.4)
            .capacity_abort_per_begin(0.2);
        let cfg = SimConfig::new(platform.config())
            .mem_words(1 << 18)
            .seed(0xCEF1)
            .faults(plan)
            .fallback(FallbackPolicy::Adaptive)
            .certify(true)
            .sanitize(true);
        let sim = Sim::new(cfg);
        let base = sim.alloc().alloc_aligned(8, 64);
        let stats = sim.run_parallel(4, RetryPolicy::uniform(1), contended_work(base));
        let report = stats.certify.as_ref().expect("certifier on");
        assert!(report.ok(), "{platform}: {report}");
        let race = stats.race.as_ref().expect("sanitizer on");
        assert!(race.ok(), "{platform}: adaptive run reported races: {race}");
    }
}
