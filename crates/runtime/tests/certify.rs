//! Property tests for the online serializability certifier (DESIGN.md §5).
//!
//! Two directions:
//!
//! * **Soundness of the runtime** — randomized workloads (random access
//!   patterns, thread counts, platforms) under randomized fault plans must
//!   always produce a conflict-serializable committed schedule: the
//!   certifier's conflict graph is acyclic and every transactional read
//!   observed the most recent serialized writer's value.
//! * **Sensitivity of the certifier** — a deliberately broken conflict
//!   policy (the `set_test_skip_reader_doom` hook leaves readers standing
//!   when a writer commits, manufacturing lost updates) must be *caught*,
//!   not certified.

use htm_machine::Platform;
use htm_runtime::{FaultPlan, RetryPolicy, Sim, SimConfig, ThreadCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One randomized certified run: `threads` workers hammer `words` shared
/// words (all on a handful of conflict-detection lines) with random
/// read/write mixes per block.
fn random_certified_run(platform: Platform, master_seed: u64) -> htm_runtime::CertifyReport {
    let mut g = SmallRng::seed_from_u64(master_seed);
    let threads = g.gen_range(2..=4u32);
    let words = g.gen_range(4..=24u32);
    let blocks = g.gen_range(20..=80u64);
    let plan = FaultPlan::none()
        .transient_abort_per_begin(g.gen_range(0.0..0.4))
        .capacity_abort_per_begin(g.gen_range(0.0..0.1))
        .transient_abort_per_access(g.gen_range(0.0..0.03))
        .doom_at_commit(g.gen_range(0.0..0.15));
    let cfg = SimConfig::new(platform.config())
        .mem_words(1 << 16)
        .seed(master_seed)
        .faults(plan)
        .certify(true);
    let sim = Sim::new(cfg);
    let base = sim.alloc().alloc_aligned(words, 64);

    let stats = sim.run_parallel(threads, RetryPolicy::default(), |ctx: &mut ThreadCtx| {
        let tid = ctx.thread_id() as u64;
        for _ in 0..blocks {
            ctx.atomic(|tx| {
                // 1–4 read-modify-writes plus 0–2 pure reads per block,
                // all on random shared words.
                let writes = rand::Rng::gen_range(tx.rng(), 1..=4u32);
                for _ in 0..writes {
                    let w = rand::Rng::gen_range(tx.rng(), 0..words);
                    let v = tx.load(base.offset(w))?;
                    tx.store(
                        base.offset(w),
                        v.wrapping_mul(6364136223846793005).wrapping_add(tid),
                    )?;
                }
                let reads = rand::Rng::gen_range(tx.rng(), 0..=2u32);
                for _ in 0..reads {
                    let w = rand::Rng::gen_range(tx.rng(), 0..words);
                    let _ = tx.load(base.offset(w))?;
                }
                Ok(())
            });
        }
    });
    stats.certify.expect("certifier enabled")
}

#[test]
fn random_workloads_under_random_fault_plans_always_certify() {
    for (i, p) in [Platform::IntelCore, Platform::BlueGeneQ, Platform::Zec12, Platform::Power8]
        .into_iter()
        .enumerate()
    {
        for round in 0..6u64 {
            let seed = 0x5EED_0000 + (i as u64) * 100 + round;
            let report = random_certified_run(p, seed);
            assert!(report.ok(), "{p:?} seed {seed:#x}:\n{report}");
            assert!(report.events > 0, "{p:?} seed {seed:#x}: no events captured");
        }
    }
}

#[test]
fn a_broken_conflict_policy_is_caught() {
    // Disable reader dooming: a committing writer no longer invalidates
    // concurrent readers of its lines, so two increments of the same word
    // can both commit from the same observed value — the classic lost
    // update. The certifier must flag the schedule, not bless it.
    let cfg =
        SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 16).seed(0xBAD).certify(true);
    let sim = Sim::new(cfg);
    let ctr = sim.alloc().alloc_aligned(1, 64);
    sim.mem().set_test_skip_reader_doom(true);

    let stats = sim.run_parallel(4, RetryPolicy::default(), |ctx: &mut ThreadCtx| {
        for _ in 0..2000 {
            ctx.atomic(|tx| {
                let v = tx.load(ctr)?;
                tx.store(ctr, v + 1)
            });
        }
    });
    sim.mem().set_test_skip_reader_doom(false);

    let report = stats.certify.expect("certifier enabled");
    let lost = 8000 - sim.read_word(ctr);
    assert!(lost > 0, "the broken policy failed to manufacture lost updates");
    assert!(!report.ok(), "certifier blessed a non-serializable schedule ({lost} lost updates)");
    assert!(!report.violations.is_empty(), "report must carry the witnesses:\n{report}");
}

#[test]
fn an_intact_policy_on_the_same_workload_certifies() {
    // The control for `a_broken_conflict_policy_is_caught`: identical
    // workload, hook left off — clean report and no lost updates.
    let cfg =
        SimConfig::new(Platform::IntelCore.config()).mem_words(1 << 16).seed(0xBAD).certify(true);
    let sim = Sim::new(cfg);
    let ctr = sim.alloc().alloc_aligned(1, 64);

    let stats = sim.run_parallel(4, RetryPolicy::default(), |ctx: &mut ThreadCtx| {
        for _ in 0..2000 {
            ctx.atomic(|tx| {
                let v = tx.load(ctr)?;
                tx.store(ctr, v + 1)
            });
        }
    });

    assert_eq!(sim.read_word(ctr), 8000);
    let report = stats.certify.expect("certifier enabled");
    assert!(report.ok(), "{report}");
}
