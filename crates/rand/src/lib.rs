//! Vendored stand-in for the `rand` crate (API-compatible subset of 0.8).
//!
//! The build environment has no crates.io access, so the workspace ships
//! this minimal deterministic implementation instead of the real `rand`:
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the same
//! generator family rand 0.8's `SmallRng` uses on 64-bit targets — and the
//! [`Rng`]/[`SeedableRng`]/[`seq::SliceRandom`] traits cover exactly the
//! surface the simulator and benchmarks call. Everything is deterministic
//! given the seed; nothing touches OS entropy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from half-open or inclusive bounds.
///
/// The generic [`SampleRange`] impls are written over this trait (as in the
/// real rand crate) so the element type propagates through inference: in
/// `rng.gen_range(0..100) < threshold_u32` the literal becomes `u32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                // Widening-multiply mapping of a 64-bit draw onto the span
                // (bias is < 2^-64 per draw; determinism is what matters).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as $u).wrapping_add(v as $u) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (low as $u).wrapping_add(v as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "cannot sample empty range");
        low + (high - low) * f64::sample(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator rand 0.8 uses for
    /// `SmallRng` on 64-bit platforms. Deterministic, not
    /// cryptographically secure.
    ///
    /// Beyond the rand 0.8 surface, this vendored version counts how many
    /// 64-bit words have been drawn ([`SmallRng::draws`]) and can fast-forward
    /// the stream ([`SmallRng::skip`]); deterministic record/replay uses both
    /// to re-align a generator with a recorded execution without re-running
    /// the code that consumed the skipped draws.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
        draws: u64,
    }

    impl SmallRng {
        /// Number of 64-bit words drawn since seeding. Every `Rng` sample in
        /// this vendored crate consumes exactly one word, so this doubles as
        /// a sample counter.
        pub fn draws(&self) -> u64 {
            self.draws
        }

        /// Advances the stream by `n` draws without using the values.
        pub fn skip(&mut self, n: u64) {
            use super::RngCore;
            for _ in 0..n {
                let _ = self.next_u64();
            }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s, draws: 0 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u32..=6);
            assert!((3..=6).contains(&w));
            let f = r.gen_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&f));
            let b = r.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn draws_counts_every_sample_and_skip_fast_forwards() {
        let mut a = SmallRng::seed_from_u64(21);
        assert_eq!(a.draws(), 0);
        let _ = a.gen::<u64>();
        let _ = a.gen_range(0..100u32);
        let _ = a.gen::<f64>();
        assert_eq!(a.draws(), 3, "each sample consumes exactly one word");

        let mut b = SmallRng::seed_from_u64(21);
        b.skip(3);
        assert_eq!(b.draws(), 3);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "skip must land on the same stream");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
