//! Fault-tolerant experiment fabric for `htm-exp`.
//!
//! The experiment engine computes grids of cells whose results are
//! content-addressed and cached. This crate adds the missing robustness
//! layer for long multi-hour regenerations: a **coordinator** process that
//! shards cells to **worker** processes over a loopback socket protocol,
//! and keeps the run alive through worker crashes, hangs, and kills.
//!
//! The guarantees, and where each lives:
//!
//! | Failure | Mechanism | Module |
//! |---|---|---|
//! | Worker crashes mid-cell | lease reclaim + capped randomized backoff retry | [`coordinator`] |
//! | Worker hangs mid-cell | per-cell wall-clock lease deadline → SIGKILL | [`coordinator`] |
//! | Worker dies silently | heartbeat liveness timeout | [`coordinator`], [`worker`] |
//! | Cell keeps failing | bounded attempts, then quarantine + partial report | [`coordinator`] |
//! | No worker spawns at all | graceful degradation to in-process execution | [`coordinator`] |
//! | Duplicate cells in a grid | in-flight dedup by content key, result fan-out | [`coordinator`] |
//!
//! Failure handling is only trustworthy if it is *exercised*, so the crate
//! ships a deterministic chaos harness ([`chaos`]): seeded schedules of
//! worker-kills, stalls, and lost reports keyed on assignment sequence
//! numbers, mirroring the runtime's `FaultPlan` discipline. The pinned
//! invariant is that a chaos run finishes with results bit-identical to a
//! clean run — fault tolerance must never change *what* is computed, only
//! *how many times*.
//!
//! The crate is deliberately ignorant of experiment specifics: work items
//! are `(index, content key)` pairs and results are opaque [`Json`]
//! payloads, so `htm-exp` owns serialization and cell semantics while this
//! crate owns scheduling and recovery.
//!
//! [`Json`]: htm_analyze::Json

#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan};
pub use coordinator::{
    backoff_ms, run_fabric, run_fabric_with, FabricConfig, FabricOutcome, FabricStats, WorkItem,
};
pub use proto::{Directive, ToCoordinator, ToWorker};
pub use worker::{serve, CHAOS_EXIT};

#[cfg(test)]
mod tests {
    use std::sync::mpsc::channel;
    use std::time::{Duration, Instant};

    use htm_analyze::Json;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::*;

    fn items(n: usize) -> Vec<WorkItem> {
        (0..n).map(|i| WorkItem { index: i, key: format!("cell-{i}") }).collect()
    }

    fn quick_cfg() -> FabricConfig {
        FabricConfig {
            workers: 2,
            heartbeat_ms: 10,
            liveness_timeout_ms: 1_000,
            cell_timeout_ms: 5_000,
            max_attempts: 4,
            backoff_base_ms: 1,
            backoff_cap_ms: 10,
            connect_wait_ms: 5_000,
            max_respawns: 4,
            seed: 42,
            chaos: ChaosPlan::none(),
            verbose: false,
        }
    }

    /// The result payload thread workers report: `{"key": <cell key>}`,
    /// so tests can check fan-out content.
    fn payload(key: &str) -> Json {
        Json::Obj(vec![("key".into(), Json::str(key))])
    }

    /// Runs the coordinator in external-worker mode with `n` in-thread
    /// [`serve`] workers attached at the listen address — the whole lease
    /// machinery over real sockets, no child processes.
    fn run_external(
        work: &[WorkItem],
        cfg: &FabricConfig,
        n: usize,
        compute: impl Fn(u64, usize, &str) -> Result<Json, String> + Clone + Send + 'static,
    ) -> FabricOutcome {
        let (addr_tx, addr_rx) = channel::<String>();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wid = 100 + i as u64;
                let compute = compute.clone();
                let (tx, rx) = channel::<String>();
                let h = std::thread::spawn(move || {
                    let Ok(addr) = rx.recv() else {
                        return;
                    };
                    let _ = serve(&addr, wid, 10, |cell, key| compute(wid, cell, key));
                });
                (h, tx)
            })
            .collect();
        let relay = std::thread::spawn(move || {
            let Ok(addr) = addr_rx.recv() else {
                return;
            };
            for (_, tx) in &handles {
                let _ = tx.send(addr.clone());
            }
            for (h, _) in handles {
                let _ = h.join();
            }
        });
        let out = run_fabric_with(work, &[], cfg, move |addr| {
            let _ = addr_tx.send(addr.to_string());
        });
        let _ = relay.join();
        out
    }

    #[test]
    fn empty_work_is_a_noop() {
        let out = run_fabric(&[], &["true".into()], &quick_cfg());
        assert!(out.results.is_empty());
        assert!(!out.degraded);
        assert_eq!(out.stats, FabricStats::default());
    }

    #[test]
    fn unspawnable_worker_degrades_cleanly() {
        let out =
            run_fabric(&items(3), &["/nonexistent/htm-exp-worker-binary".into()], &quick_cfg());
        assert!(out.degraded, "missing binary must degrade, not hang");
        assert_eq!(out.unexecuted, vec![0, 1, 2]);
        assert!(out.errors.is_empty());
        assert!(out.results.iter().all(Option::is_none));
    }

    #[test]
    fn no_external_workers_degrades_after_connect_window() {
        let cfg = FabricConfig { connect_wait_ms: 100, ..quick_cfg() };
        let start = Instant::now();
        let out = run_fabric(&items(2), &[], &cfg);
        assert!(out.degraded);
        assert_eq!(out.unexecuted, vec![0, 1]);
        assert!(start.elapsed() < Duration::from_secs(5), "degradation must be prompt, not a hang");
    }

    #[test]
    fn clean_run_completes_all_cells() {
        let out = run_external(&items(6), &quick_cfg(), 2, |_, _, key| Ok(payload(key)));
        assert!(!out.degraded);
        assert!(out.errors.is_empty());
        assert_eq!(out.results.len(), 6);
        for (i, r) in out.results.iter().enumerate() {
            let r = r.as_ref().expect("every cell computed");
            assert_eq!(r.get("key").and_then(Json::as_str), Some(format!("cell-{i}").as_str()));
        }
        assert_eq!(out.stats.retries, 0);
        assert_eq!(out.stats.assignments, 6);
    }

    #[test]
    fn dedup_computes_shared_keys_once_and_fans_out() {
        let work = vec![
            WorkItem { index: 0, key: "a".into() },
            WorkItem { index: 1, key: "b".into() },
            WorkItem { index: 2, key: "a".into() },
            WorkItem { index: 3, key: "a".into() },
        ];
        let out = run_external(&work, &quick_cfg(), 2, |_, _, key| Ok(payload(key)));
        assert!(!out.degraded);
        assert_eq!(out.stats.assignments, 2, "two distinct keys ⇒ two assignments");
        for pos in [0, 2, 3] {
            let r = out.results[pos].as_ref().expect("fanned out");
            assert_eq!(r.get("key").and_then(Json::as_str), Some("a"));
        }
        assert_eq!(out.results[1].as_ref().unwrap().get("key").and_then(Json::as_str), Some("b"));
    }

    #[test]
    fn transient_errors_are_retried_with_bounded_attempts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let failures = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&failures);
        // cell-1 fails twice, then succeeds; everything else is clean.
        let out = run_external(&items(3), &quick_cfg(), 2, move |_, _, key| {
            if key == "cell-1" && f.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".into())
            } else {
                Ok(payload(key))
            }
        });
        assert!(!out.degraded);
        assert!(out.errors.is_empty(), "transient failure recovered: {:?}", out.errors);
        assert!(out.results.iter().all(Option::is_some));
        assert_eq!(out.stats.retries, 2);
        assert!(out.stats.quarantined == 0);
    }

    #[test]
    fn persistent_failure_quarantines_with_partial_results() {
        let cfg = quick_cfg();
        let out = run_external(&items(3), &cfg, 2, |_, _, key| {
            if key == "cell-2" {
                Err("deterministic bug".into())
            } else {
                Ok(payload(key))
            }
        });
        assert!(!out.degraded, "quarantine is not degradation");
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].0, 2);
        assert!(out.errors[0].1.contains("deterministic bug"));
        assert_eq!(out.stats.quarantined, 1);
        // Bounded: exactly max_attempts assignments for the bad cell.
        assert_eq!(out.stats.retries as u32, cfg.max_attempts - 1);
        // The healthy cells still report (the partial-result guarantee).
        assert!(out.results[0].is_some() && out.results[1].is_some());
        assert!(out.results[2].is_none());
    }

    #[test]
    fn assign_phase_kill_is_recovered_by_surviving_worker() {
        // Chaos kills the assignee of assignment 0 (socket severed before
        // it can report); the surviving worker must complete everything.
        let cfg = FabricConfig {
            chaos: ChaosPlan::none().event(0, ChaosAction::KillAssignee),
            ..quick_cfg()
        };
        let out = run_external(&items(4), &cfg, 2, |_, _, key| Ok(payload(key)));
        assert!(!out.degraded);
        assert!(out.errors.is_empty());
        assert!(out.results.iter().all(Option::is_some), "killed lease must be reclaimed");
        // No retry assertion: the dying worker's result can race in ahead
        // of the reassignment, legitimately completing the cell.
        assert!(out.stats.lost >= 1);
    }

    #[test]
    fn stalled_worker_is_reaped_by_lease_timeout() {
        // Assignment 0 carries a stall directive: the worker wedges while
        // heartbeating. Only the lease deadline can reclaim the cell.
        let cfg = FabricConfig {
            cell_timeout_ms: 150,
            chaos: ChaosPlan::none().event(0, ChaosAction::Stall),
            ..quick_cfg()
        };
        let out = run_external(&items(3), &cfg, 2, |_, _, key| Ok(payload(key)));
        assert!(!out.degraded);
        assert!(out.errors.is_empty());
        assert!(out.results.iter().all(Option::is_some));
        assert_eq!(out.stats.timeouts, 1, "stall must be reclaimed by the lease deadline");
        assert!(out.stats.lost >= 1);
    }

    #[test]
    fn losing_all_but_one_worker_still_completes() {
        // Three kill events early in the schedule against four workers:
        // the last survivor must finish the whole grid.
        let cfg = FabricConfig {
            workers: 4,
            chaos: ChaosPlan::none()
                .event(0, ChaosAction::KillAssignee)
                .event(1, ChaosAction::KillAssignee)
                .event(2, ChaosAction::KillAssignee),
            ..quick_cfg()
        };
        let out = run_external(&items(8), &cfg, 4, |_, _, key| Ok(payload(key)));
        assert!(!out.degraded);
        assert!(out.errors.is_empty());
        assert!(out.results.iter().all(Option::is_some));
        assert!(out.stats.lost >= 3);
    }

    #[test]
    fn losing_every_worker_degrades_with_unexecuted_remainder() {
        // One worker, killed at its first assignment, no respawn possible
        // (external mode): the rest of the grid must come back unexecuted
        // rather than hanging.
        let cfg = FabricConfig {
            workers: 1,
            connect_wait_ms: 200,
            chaos: ChaosPlan::none().event(0, ChaosAction::KillAssignee),
            ..quick_cfg()
        };
        let start = Instant::now();
        let out = run_external(&items(4), &cfg, 1, |_, _, key| Ok(payload(key)));
        assert!(out.degraded, "no workers left and no respawn budget ⇒ degrade");
        assert!(!out.unexecuted.is_empty());
        assert!(start.elapsed() < Duration::from_secs(10), "degradation must not hang");
    }

    #[test]
    fn backoff_is_capped_and_nonzero() {
        let mut rng = SmallRng::seed_from_u64(1);
        for attempt in 1..=64 {
            let d = backoff_ms(10, 500, attempt, &mut rng);
            assert!((1..=500).contains(&d), "attempt {attempt}: {d}ms outside [1,500]");
        }
        // Early attempts stay near the base; jitter is at most 1.5x.
        let mut rng = SmallRng::seed_from_u64(2);
        let first = backoff_ms(10, 500, 1, &mut rng);
        assert!(first <= 15, "first retry delay {first}ms exceeds base*1.5");
    }

    #[test]
    fn backoff_is_deterministic_under_seed() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (1..=8).map(|a| backoff_ms(10, 500, a, &mut rng)).collect()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
