//! Deterministic chaos schedules for the fabric, mirroring the runtime's
//! `FaultPlan` discipline: everything is seeded, nothing touches OS
//! entropy, and an empty plan leaves the fabric byte-identical to an
//! un-instrumented run.
//!
//! A plan is a list of events keyed by a *sequence number*: for
//! worker-phase actions the number counts assignments the coordinator has
//! handed out, and for [`ChaosAction::TornStore`] it counts cache stores
//! the experiment layer has performed. Keying on sequence numbers (rather
//! than wall-clock) keeps a schedule reproducible under arbitrary worker
//! interleavings: the *N*-th assignment is always hit, whichever worker
//! and cell it lands on — and the run must still finish with bit-identical
//! results, which is exactly the invariant the chaos tests pin.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a chaos event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosAction {
    /// SIGKILL the assignee immediately after the assignment is sent (a
    /// crash in the *assign* phase: the cell is leased but never starts).
    KillAssignee,
    /// Direct the assignee to wedge mid-compute (the *execute* phase);
    /// recovery is the lease timeout's SIGKILL escalation.
    Stall,
    /// Direct the assignee to compute and die before reporting (a crash in
    /// the *commit* phase: work done, result lost).
    DieBeforeReport,
    /// Direct the assignee to die right after reporting (the result must
    /// count exactly once despite the crash).
    DieAfterReport,
    /// Truncate the cache entry just written for this store (a torn write
    /// the self-healing cache must quarantine and regenerate on the next
    /// load). Counted on the store sequence, not the assignment sequence.
    TornStore,
}

impl ChaosAction {
    /// Stable CLI spelling (the inverse of [`ChaosAction::parse`]).
    pub fn key(self) -> &'static str {
        match self {
            ChaosAction::KillAssignee => "kill",
            ChaosAction::Stall => "stall",
            ChaosAction::DieBeforeReport => "lostreport",
            ChaosAction::DieAfterReport => "dieafter",
            ChaosAction::TornStore => "torn",
        }
    }

    /// Parses a CLI spelling (the inverse of [`ChaosAction::key`]).
    pub fn parse(s: &str) -> Option<ChaosAction> {
        match s {
            "kill" => Some(ChaosAction::KillAssignee),
            "stall" => Some(ChaosAction::Stall),
            "lostreport" => Some(ChaosAction::DieBeforeReport),
            "dieafter" => Some(ChaosAction::DieAfterReport),
            "torn" => Some(ChaosAction::TornStore),
            _ => None,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Sequence number the event fires at (assignment count for worker
    /// actions, store count for [`ChaosAction::TornStore`]).
    pub at: usize,
    /// What happens.
    pub action: ChaosAction,
}

/// Largest `kills` a parsed storm accepts (no real fabric run hands out
/// anywhere near this many assignments).
pub const MAX_STORM_KILLS: usize = 4096;
/// Largest `span` a parsed storm accepts.
pub const MAX_STORM_SPAN: usize = 1 << 20;

/// A deterministic fault schedule. The default (empty) plan injects
/// nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The scheduled events.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// The empty plan.
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: adds one event.
    pub fn event(mut self, at: usize, action: ChaosAction) -> ChaosPlan {
        self.events.push(ChaosEvent { at, action });
        self
    }

    /// A seeded worker-kill storm: `kills` events at distinct assignment
    /// sequence numbers in `[0, span)`, with the action drawn uniformly
    /// from the three lifecycle phases (assign-kill, execute-stall,
    /// commit-loss). Deterministic given the seed.
    pub fn storm(seed: u64, kills: usize, span: usize) -> ChaosPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc4a0_5fa8);
        let mut seqs: Vec<usize> = Vec::new();
        let span = span.max(kills);
        while seqs.len() < kills.min(span) {
            let s = rng.gen_range(0..span);
            if !seqs.contains(&s) {
                seqs.push(s);
            }
        }
        seqs.sort_unstable();
        let mut plan = ChaosPlan::none();
        for at in seqs {
            let action = match rng.gen_range(0..3u32) {
                0 => ChaosAction::KillAssignee,
                1 => ChaosAction::Stall,
                _ => ChaosAction::DieBeforeReport,
            };
            plan.events.push(ChaosEvent { at, action });
        }
        plan
    }

    /// The first worker-phase action scheduled at assignment `seq`, if
    /// any ([`ChaosAction::TornStore`] events are excluded — they key on
    /// the store sequence and are consumed by [`ChaosPlan::torn_store_at`]).
    pub fn action_at(&self, seq: usize) -> Option<ChaosAction> {
        self.events
            .iter()
            .find(|e| e.at == seq && e.action != ChaosAction::TornStore)
            .map(|e| e.action)
    }

    /// Whether a torn cache store is scheduled at store sequence `seq`.
    pub fn torn_store_at(&self, seq: usize) -> bool {
        self.events.iter().any(|e| e.at == seq && e.action == ChaosAction::TornStore)
    }

    /// Parses a CLI spelling: either `storm:seed=S,kills=K,span=N` or a
    /// semicolon-separated event list `kill@2;stall@5;lostreport@7;torn@1`.
    pub fn parse(s: &str) -> Result<ChaosPlan, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(ChaosPlan::none());
        }
        if let Some(body) = s.strip_prefix("storm:") {
            let (mut seed, mut kills, mut span) = (42u64, 4usize, 16usize);
            for part in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| format!("chaos storm parameter {part:?} needs key=value"))?;
                let parse_err = || format!("chaos storm parameter {part:?}: not an integer");
                match k {
                    "seed" => seed = v.parse().map_err(|_| parse_err())?,
                    "kills" => kills = v.parse().map_err(|_| parse_err())?,
                    "span" => span = v.parse().map_err(|_| parse_err())?,
                    other => return Err(format!("unknown chaos storm parameter {other:?}")),
                }
            }
            // `storm` draws distinct sequence numbers by rejection sampling
            // (quadratic in `kills`), so absurd parameters from the CLI
            // must be refused here rather than spun on for hours.
            if kills > MAX_STORM_KILLS {
                return Err(format!("chaos storm kills={kills} exceeds {MAX_STORM_KILLS}"));
            }
            if span > MAX_STORM_SPAN {
                return Err(format!("chaos storm span={span} exceeds {MAX_STORM_SPAN}"));
            }
            return Ok(ChaosPlan::storm(seed, kills, span));
        }
        let mut plan = ChaosPlan::none();
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (name, at) = part
                .split_once('@')
                .ok_or_else(|| format!("chaos event {part:?} needs the form action@seq"))?;
            let action = ChaosAction::parse(name).ok_or_else(|| {
                format!("unknown chaos action {name:?} (kill|stall|lostreport|dieafter|torn)")
            })?;
            let at =
                at.parse().map_err(|_| format!("chaos event {part:?}: sequence not an integer"))?;
            plan.events.push(ChaosEvent { at, action });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_are_deterministic_and_distinct() {
        let a = ChaosPlan::storm(7, 6, 20);
        let b = ChaosPlan::storm(7, 6, 20);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 6);
        let mut seqs: Vec<usize> = a.events.iter().map(|e| e.at).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 6, "storm events land on distinct assignments");
        assert!(seqs.iter().all(|&s| s < 20));
        assert_ne!(a, ChaosPlan::storm(8, 6, 20));
    }

    #[test]
    fn storm_covers_all_three_phases_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            for e in ChaosPlan::storm(seed, 4, 16).events {
                seen.insert(e.action);
            }
        }
        for phase in [ChaosAction::KillAssignee, ChaosAction::Stall, ChaosAction::DieBeforeReport] {
            assert!(seen.contains(&phase), "storms never draw {phase:?}");
        }
    }

    #[test]
    fn lookup_separates_assignment_and_store_sequences() {
        let plan = ChaosPlan::none()
            .event(2, ChaosAction::KillAssignee)
            .event(2, ChaosAction::TornStore)
            .event(5, ChaosAction::Stall);
        assert_eq!(plan.action_at(2), Some(ChaosAction::KillAssignee));
        assert_eq!(plan.action_at(5), Some(ChaosAction::Stall));
        assert_eq!(plan.action_at(0), None);
        assert!(plan.torn_store_at(2));
        assert!(!plan.torn_store_at(5));
    }

    #[test]
    fn parse_round_trips_both_forms() {
        let p = ChaosPlan::parse("kill@2;stall@5;lostreport@7;dieafter@9;torn@1").unwrap();
        assert_eq!(p.events.len(), 5);
        assert_eq!(p.action_at(7), Some(ChaosAction::DieBeforeReport));
        assert!(p.torn_store_at(1));
        assert_eq!(
            ChaosPlan::parse("storm:seed=7,kills=6,span=20").unwrap(),
            ChaosPlan::storm(7, 6, 20)
        );
        assert_eq!(ChaosPlan::parse("").unwrap(), ChaosPlan::none());
        assert!(ChaosPlan::parse("explode@3").is_err());
        assert!(ChaosPlan::parse("kill").is_err());
        assert!(ChaosPlan::parse("storm:power=9").is_err());
    }

    #[test]
    fn hostile_plan_strings_are_rejected_quickly_not_spun_on() {
        // Rejection sampling over distinct sequence numbers is quadratic
        // in `kills`; these must fail fast instead of looping for hours
        // (or forever, for kills > span after the span clamp).
        assert!(ChaosPlan::parse("storm:kills=18446744073709551615").is_err());
        assert!(ChaosPlan::parse("storm:kills=1000000000,span=1").is_err());
        assert!(ChaosPlan::parse("storm:span=18446744073709551615").is_err());
        // Other malformed spellings reject cleanly too.
        assert!(ChaosPlan::parse("storm:kills=-3").is_err());
        assert!(ChaosPlan::parse("storm:kills=4.5").is_err());
        assert!(ChaosPlan::parse("kill@-1").is_err());
        assert!(ChaosPlan::parse("kill@99999999999999999999999999").is_err());
        assert!(ChaosPlan::parse("kill@2;;stall@5").is_ok(), "empty segments are skipped");
        assert!(ChaosPlan::parse(";").unwrap().is_empty());
        // The largest accepted storm still builds in reasonable time.
        let p = ChaosPlan::parse(&format!("storm:kills={MAX_STORM_KILLS},span={MAX_STORM_KILLS}"))
            .unwrap();
        assert_eq!(p.events.len(), MAX_STORM_KILLS);
    }
}
