//! The fabric coordinator: shards work items to worker processes under
//! lease-based assignment, and survives every way a worker can fail.
//!
//! Robustness model, in one place:
//!
//! * **Leases** — an assignment is a lease `(cell, attempt, deadline)`.
//!   A worker that crashes, hangs, or is killed never loses work: its
//!   lease is reclaimed and the cell is retried elsewhere after a capped,
//!   seeded-random backoff. Attempts are bounded; a cell that keeps
//!   failing is *quarantined* with its last error instead of hanging the
//!   run.
//! * **Timeouts** — each lease carries a wall-clock deadline. A wedged
//!   worker (stalled cell, livelocked simulator) is SIGKILLed when its
//!   lease expires; heartbeats catch workers that die without closing
//!   their socket.
//! * **Liveness** — workers heartbeat on a side thread even while a cell
//!   computes, so a long cell is distinguishable from a dead process.
//! * **Degradation** — if no worker can be spawned or every worker is
//!   lost with no respawn budget left, the coordinator returns the
//!   remaining items as *unexecuted* so the caller can fall back to
//!   in-process execution instead of failing the run.
//! * **Dedup** — items with identical content keys are computed once and
//!   fanned out, so overlapping grids never pay twice in one run.
//!
//! The coordinator is transport-agnostic about who serves the work: it
//! spawns `worker_cmd` processes (appending `--fabric-addr`/`--fabric-id`)
//! when a command is given, and also accepts externally attached workers
//! on its listen address — which is how the in-crate tests drive the lease
//! machinery with misbehaving in-thread workers, no child processes
//! needed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htm_analyze::Json;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::proto::{send, Directive, ToCoordinator, ToWorker};

/// One unit of schedulable work: the caller's index plus the cell's
/// content key (equal keys ⇒ identical results; the coordinator dedups on
/// it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Caller-side index ([`FabricOutcome::results`] is addressed by it).
    pub index: usize,
    /// Content key (also shipped to the worker for cross-checking).
    pub key: String,
}

/// Fabric tuning knobs. The defaults are production-shaped; chaos tests
/// shrink the timeouts to keep wall-clock down.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricConfig {
    /// Worker processes to spawn (external workers may attach on top).
    pub workers: usize,
    /// Worker heartbeat interval.
    pub heartbeat_ms: u64,
    /// A worker whose last heartbeat is older than this is presumed dead.
    pub liveness_timeout_ms: u64,
    /// Per-cell wall-clock lease; expiry SIGKILLs the assignee.
    pub cell_timeout_ms: u64,
    /// Maximum assignments per cell before quarantine.
    pub max_attempts: u32,
    /// Base backoff before a reclaimed cell is retried.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (the cap in "capped randomized backoff").
    pub backoff_cap_ms: u64,
    /// How long to wait for the first worker to connect before degrading
    /// (also the per-worker connect window after spawn).
    pub connect_wait_ms: u64,
    /// Replacement workers the coordinator may spawn after losses (failed
    /// spawn attempts burn budget too, so a broken worker binary degrades
    /// instead of retrying forever).
    pub max_respawns: usize,
    /// Seed for backoff jitter (and anything else the coordinator draws).
    pub seed: u64,
    /// Chaos schedule (empty outside the chaos harness).
    pub chaos: ChaosPlan,
    /// Let workers inherit stderr (debugging; chaos tests keep it off).
    pub verbose: bool,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            workers: 2,
            heartbeat_ms: 100,
            liveness_timeout_ms: 3_000,
            cell_timeout_ms: 300_000,
            max_attempts: 4,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            connect_wait_ms: 10_000,
            max_respawns: 8,
            seed: 42,
            chaos: ChaosPlan::none(),
            verbose: false,
        }
    }
}

/// Counters describing what the fabric did (surfaced through the engine
/// report and the chaos tests' bounded-retry assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Worker processes spawned (including respawns).
    pub spawned: usize,
    /// Workers lost to crash, kill, or liveness timeout.
    pub lost: usize,
    /// Replacement spawns attempted after losses (budgeted).
    pub respawns: usize,
    /// Assignments handed out (retries included).
    pub assignments: usize,
    /// Assignments beyond each cell's first (the retry count).
    pub retries: usize,
    /// Leases reclaimed by wall-clock timeout (SIGKILL escalations).
    pub timeouts: usize,
    /// Results that arrived for already-completed cells (late duplicates
    /// from workers presumed dead; counted, ignored).
    pub stale_results: usize,
    /// Cells quarantined after exhausting their attempt bound.
    pub quarantined: usize,
}

/// What a fabric run produced.
#[derive(Clone, Debug, Default)]
pub struct FabricOutcome {
    /// One slot per input item (same order): the serialized result, or
    /// `None` for quarantined/unexecuted items.
    pub results: Vec<Option<Json>>,
    /// Quarantined items as `(input position, last error)`.
    pub errors: Vec<(usize, String)>,
    /// Input positions never executed because the fabric degraded (no
    /// workers could be spawned or all were lost); the caller should run
    /// these in-process.
    pub unexecuted: Vec<usize>,
    /// Whether the run degraded (any `unexecuted` ⇒ `true`).
    pub degraded: bool,
    /// Counters.
    pub stats: FabricStats,
}

/// Backoff before retry `attempt` (1-based): `base · 2^(attempt-1)` with a
/// seeded jitter factor in `[0.5, 1.5)`, capped at `cap`. Pure, so the
/// bound is testable: the delay never exceeds `cap` and never collapses to
/// zero.
pub fn backoff_ms(base: u64, cap: u64, attempt: u32, rng: &mut SmallRng) -> u64 {
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
    let jitter = 0.5 + rng.gen_range(0.0..1.0);
    ((exp as f64 * jitter) as u64).clamp(1, cap.max(1))
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    Ready,
    Delayed,
    Leased,
    Done,
    Quarantined,
}

struct Task {
    /// Representative input position (the wire-visible cell id).
    rep: usize,
    /// All input positions sharing this key (fan-out on completion).
    positions: Vec<usize>,
    key: String,
    attempts: u32,
    state: TaskState,
    ready_at: Instant,
    last_error: String,
}

struct WorkerState {
    child: Option<Child>,
    conn: Option<TcpStream>,
    last_seen: Instant,
    /// `(task id, attempt, deadline)`.
    lease: Option<(usize, u32, Instant)>,
    spawned_at: Instant,
}

enum Event {
    Hello(u64, TcpStream),
    Msg(u64, ToCoordinator),
    Closed(u64),
}

/// The coordinator's mutable world, threaded through the helpers.
struct Fabric<'a> {
    cfg: &'a FabricConfig,
    worker_cmd: &'a [String],
    addr: String,
    tasks: Vec<Task>,
    rep_to_task: HashMap<usize, usize>,
    workers: HashMap<u64, WorkerState>,
    next_worker_id: u64,
    open: usize,
    rng: SmallRng,
    stats: FabricStats,
    results: Vec<Option<Json>>,
}

/// Runs `items` over the fabric. `worker_cmd` is the worker executable and
/// its leading arguments (`--fabric-addr <addr> --fabric-id <n>` are
/// appended); an empty command spawns nothing and serves only externally
/// attached workers (the test harness), degrading if none attach in time.
pub fn run_fabric(items: &[WorkItem], worker_cmd: &[String], cfg: &FabricConfig) -> FabricOutcome {
    run_fabric_with(items, worker_cmd, cfg, |_| {})
}

/// [`run_fabric`] with a hook that receives the coordinator's listen
/// address once it is bound — the rendezvous the in-crate chaos tests use
/// to attach in-thread protocol workers without child processes.
pub fn run_fabric_with(
    items: &[WorkItem],
    worker_cmd: &[String],
    cfg: &FabricConfig,
    on_listen: impl FnOnce(&str),
) -> FabricOutcome {
    if items.is_empty() {
        return FabricOutcome::default();
    }

    // Dedup identical keys into tasks; the representative index is the
    // wire-visible cell id.
    let mut by_key: HashMap<&str, usize> = HashMap::new();
    let mut tasks: Vec<Task> = Vec::new();
    let now = Instant::now();
    for (pos, item) in items.iter().enumerate() {
        match by_key.get(item.key.as_str()) {
            Some(&t) => tasks[t].positions.push(pos),
            None => {
                by_key.insert(item.key.as_str(), tasks.len());
                tasks.push(Task {
                    rep: pos,
                    positions: vec![pos],
                    key: item.key.clone(),
                    attempts: 0,
                    state: TaskState::Ready,
                    ready_at: now,
                    last_error: String::new(),
                });
            }
        }
    }

    let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
        return degraded_outcome(tasks, items.len());
    };
    let Ok(addr) = listener.local_addr().map(|a| a.to_string()) else {
        return degraded_outcome(tasks, items.len());
    };
    on_listen(&addr);

    let mut fab = Fabric {
        cfg,
        worker_cmd,
        addr,
        rep_to_task: tasks.iter().enumerate().map(|(t, task)| (task.rep, t)).collect(),
        open: tasks.len(),
        tasks,
        workers: HashMap::new(),
        next_worker_id: 0,
        rng: SmallRng::seed_from_u64(cfg.seed),
        stats: FabricStats::default(),
        results: vec![None; items.len()],
    };

    let (tx, rx) = channel::<Event>();
    let stopped = Arc::new(AtomicBool::new(false));
    let accept_handle = spawn_acceptor(listener, tx, Arc::clone(&stopped));

    let spawn_target = cfg.workers.clamp(1, fab.tasks.len());
    if !worker_cmd.is_empty() {
        for _ in 0..spawn_target {
            fab.spawn_worker();
        }
    }

    let started = Instant::now();
    let mut ever_connected = false;
    let mut idle_since: Option<Instant> = None;

    // All spawns failing immediately (missing binary) is a clean degrade,
    // not a connect-window wait.
    let spawnable = worker_cmd.is_empty() || !fab.workers.is_empty();
    while fab.open > 0 && spawnable {
        let alive = fab.workers.values().any(|w| w.conn.is_some() || w.child.is_some());
        let can_respawn = !worker_cmd.is_empty() && fab.stats.respawns < cfg.max_respawns;
        if alive || can_respawn {
            idle_since = None;
        } else if ever_connected {
            // All workers lost with no respawn budget. A late attacher may
            // still arrive (a respawn mid-connect, an external worker), so
            // degrade only after a full connect window of emptiness.
            let window = Duration::from_millis(cfg.connect_wait_ms);
            match idle_since {
                None => idle_since = Some(Instant::now()),
                Some(t) if t.elapsed() >= window => break,
                Some(_) => {}
            }
        }
        if !ever_connected && started.elapsed() >= Duration::from_millis(cfg.connect_wait_ms) {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(Event::Hello(wid, stream)) => {
                ever_connected = true;
                let w = fab.workers.entry(wid).or_insert_with(|| WorkerState {
                    child: None,
                    conn: None,
                    last_seen: Instant::now(),
                    lease: None,
                    spawned_at: Instant::now(),
                });
                w.conn = Some(stream);
                w.last_seen = Instant::now();
            }
            Ok(Event::Msg(wid, msg)) => fab.on_message(wid, msg),
            Ok(Event::Closed(wid)) => fab.lose_worker(wid, false),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        fab.tick();
        fab.assign_ready();
    }

    // Shutdown: ask live workers to exit, unblock the acceptor, reap.
    stopped.store(true, Ordering::SeqCst);
    for w in fab.workers.values_mut() {
        if let Some(conn) = &mut w.conn {
            let _ = send(conn, &ToWorker::Shutdown.to_json());
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
    let _ = TcpStream::connect(&fab.addr); // unblock accept()
    let _ = accept_handle.join();
    let reap_deadline = Instant::now() + Duration::from_secs(2);
    for w in fab.workers.values_mut() {
        if let Some(child) = &mut w.child {
            while Instant::now() < reap_deadline {
                match child.try_wait() {
                    Ok(Some(_)) | Err(_) => break,
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    // Classify what never finished.
    let mut out =
        FabricOutcome { results: fab.results, stats: fab.stats, ..FabricOutcome::default() };
    for task in &fab.tasks {
        match task.state {
            TaskState::Done => {}
            TaskState::Quarantined => {
                for &pos in &task.positions {
                    out.errors.push((pos, task.last_error.clone()));
                }
            }
            _ => {
                out.unexecuted.extend(task.positions.iter().copied());
                out.degraded = true;
            }
        }
    }
    out.unexecuted.sort_unstable();
    out.errors.sort_by_key(|(pos, _)| *pos);
    out
}

fn degraded_outcome(tasks: Vec<Task>, n: usize) -> FabricOutcome {
    let mut out = FabricOutcome { results: vec![None; n], degraded: true, ..Default::default() };
    for task in &tasks {
        out.unexecuted.extend(task.positions.iter().copied());
    }
    out.unexecuted.sort_unstable();
    out
}

fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Event>,
    stopped: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            if stopped.load(Ordering::SeqCst) {
                break;
            }
            let tx = tx.clone();
            std::thread::spawn(move || read_worker(stream, tx));
        }
    })
}

/// Per-connection reader: the first line must be `hello` (it names the
/// worker); everything after is forwarded. EOF, I/O errors, and protocol
/// garbage all end in a `Closed` event — the lease layer handles the rest.
fn read_worker(stream: TcpStream, tx: Sender<Event>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let wid = match reader.read_line(&mut line) {
        Ok(n) if n > 0 => match ToCoordinator::parse(&line) {
            Some(ToCoordinator::Hello { worker, .. }) => worker,
            _ => return,
        },
        _ => return,
    };
    if tx.send(Event::Hello(wid, write_half)).is_err() {
        return;
    }
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => match ToCoordinator::parse(&line) {
                Some(msg) => {
                    if tx.send(Event::Msg(wid, msg)).is_err() {
                        return;
                    }
                }
                None => break,
            },
        }
    }
    let _ = tx.send(Event::Closed(wid));
}

impl Fabric<'_> {
    fn spawn_worker(&mut self) -> bool {
        let wid = self.next_worker_id;
        self.next_worker_id += 1;
        let mut cmd = Command::new(&self.worker_cmd[0]);
        cmd.args(&self.worker_cmd[1..])
            .arg("--fabric-addr")
            .arg(&self.addr)
            .arg("--fabric-id")
            .arg(wid.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if !self.cfg.verbose {
            cmd.stderr(Stdio::null());
        }
        match cmd.spawn() {
            Ok(child) => {
                self.stats.spawned += 1;
                self.workers.insert(
                    wid,
                    WorkerState {
                        child: Some(child),
                        conn: None,
                        last_seen: Instant::now(),
                        lease: None,
                        spawned_at: Instant::now(),
                    },
                );
                true
            }
            Err(_) => false,
        }
    }

    fn on_message(&mut self, wid: u64, msg: ToCoordinator) {
        match msg {
            ToCoordinator::Hello { .. } => {}
            ToCoordinator::Heartbeat { .. } => {
                if let Some(w) = self.workers.get_mut(&wid) {
                    w.last_seen = Instant::now();
                }
            }
            ToCoordinator::Result { cell, result, .. } => {
                self.release_lease_for(wid, cell);
                match self.rep_to_task.get(&cell).copied() {
                    Some(t) => match self.tasks[t].state {
                        TaskState::Done => self.stats.stale_results += 1,
                        // A late result can even rescue a quarantined cell
                        // (its `open` slot was already closed).
                        TaskState::Quarantined => self.complete(t, result, false),
                        _ => self.complete(t, result, true),
                    },
                    None => self.stats.stale_results += 1,
                }
            }
            ToCoordinator::CellError { cell, error, .. } => {
                self.release_lease_for(wid, cell);
                if let Some(t) = self.rep_to_task.get(&cell).copied() {
                    if self.tasks[t].state == TaskState::Leased {
                        self.requeue_or_quarantine(t, error);
                    }
                }
            }
        }
    }

    fn release_lease_for(&mut self, wid: u64, cell: usize) {
        if let Some(w) = self.workers.get_mut(&wid) {
            w.last_seen = Instant::now();
            if matches!(w.lease, Some((t, _, _)) if self.tasks[t].rep == cell) {
                w.lease = None;
            }
        }
    }

    fn complete(&mut self, t: usize, result: Json, count_open: bool) {
        self.tasks[t].state = TaskState::Done;
        for &pos in &self.tasks[t].positions {
            self.results[pos] = Some(result.clone());
        }
        if count_open {
            self.open -= 1;
        }
    }

    /// Bounded retry: requeue with capped randomized backoff, or
    /// quarantine once the attempt budget is spent.
    fn requeue_or_quarantine(&mut self, t: usize, error: String) {
        let task = &mut self.tasks[t];
        task.last_error = error;
        if task.attempts >= self.cfg.max_attempts {
            task.state = TaskState::Quarantined;
            self.stats.quarantined += 1;
            self.open -= 1;
        } else {
            let delay = backoff_ms(
                self.cfg.backoff_base_ms,
                self.cfg.backoff_cap_ms,
                task.attempts,
                &mut self.rng,
            );
            task.state = TaskState::Delayed;
            task.ready_at = Instant::now() + Duration::from_millis(delay);
        }
    }

    /// Removes a worker, reclaims its lease, and respawns a replacement
    /// while work remains and the budget allows.
    fn lose_worker(&mut self, wid: u64, timed_out: bool) {
        let Some(mut w) = self.workers.remove(&wid) else {
            return; // already handled (killed on timeout, late Closed event)
        };
        self.stats.lost += 1;
        if timed_out {
            self.stats.timeouts += 1;
        }
        if let Some(conn) = &w.conn {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(child) = &mut w.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some((t, _, _)) = w.lease {
            if self.tasks[t].state == TaskState::Leased {
                self.requeue_or_quarantine(t, "worker lost mid-lease".into());
            }
        }
        if self.open > 0
            && !self.worker_cmd.is_empty()
            && self.stats.respawns < self.cfg.max_respawns
        {
            // Failed spawns burn budget too: a broken worker binary must
            // degrade, not spin.
            self.stats.respawns += 1;
            self.spawn_worker();
        }
    }

    /// Periodic maintenance: reap exited children, expire stale
    /// heartbeats, enforce lease deadlines (SIGKILL escalation), release
    /// delayed retries.
    fn tick(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        for (&wid, w) in self.workers.iter_mut() {
            // A child that exited is dead even if its socket lingers.
            if let Some(child) = &mut w.child {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    doomed.push((wid, false));
                    continue;
                }
            }
            // Spawned but never connected within the window.
            let connect_window = Duration::from_millis(self.cfg.connect_wait_ms);
            if w.conn.is_none() && now.duration_since(w.spawned_at) >= connect_window {
                doomed.push((wid, false));
                continue;
            }
            // Heartbeat staleness.
            let liveness = Duration::from_millis(self.cfg.liveness_timeout_ms);
            if w.conn.is_some() && now.duration_since(w.last_seen) >= liveness {
                doomed.push((wid, false));
                continue;
            }
            // Lease deadline: the wedged-worker SIGKILL escalation.
            if matches!(w.lease, Some((_, _, deadline)) if now >= deadline) {
                doomed.push((wid, true));
            }
        }
        for (wid, timed_out) in doomed {
            self.lose_worker(wid, timed_out);
        }
        for task in self.tasks.iter_mut() {
            if task.state == TaskState::Delayed && now >= task.ready_at {
                task.state = TaskState::Ready;
            }
        }
    }

    /// Hands ready tasks to idle connected workers, applying the chaos
    /// schedule at each assignment sequence number.
    fn assign_ready(&mut self) {
        loop {
            let Some(t) = self.tasks.iter().position(|task| task.state == TaskState::Ready) else {
                return;
            };
            // Deterministic idle-worker choice (lowest id) so chaos
            // schedules are as reproducible as OS scheduling allows.
            let mut idle: Vec<u64> = self
                .workers
                .iter()
                .filter(|(_, w)| w.conn.is_some() && w.lease.is_none())
                .map(|(&wid, _)| wid)
                .collect();
            idle.sort_unstable();
            let Some(&wid) = idle.first() else {
                return;
            };

            let seq = self.stats.assignments;
            let chaos = self.cfg.chaos.action_at(seq);
            let directive = match chaos {
                Some(ChaosAction::Stall) => Directive::Stall,
                Some(ChaosAction::DieBeforeReport) => Directive::DieBeforeReport,
                Some(ChaosAction::DieAfterReport) => Directive::DieAfterReport,
                _ => Directive::None,
            };

            self.tasks[t].attempts += 1;
            if self.tasks[t].attempts > 1 {
                self.stats.retries += 1;
            }
            let attempt = self.tasks[t].attempts;
            let msg = ToWorker::Assign {
                cell: self.tasks[t].rep,
                attempt,
                key: self.tasks[t].key.clone(),
                chaos: directive,
            };
            self.stats.assignments += 1;
            self.tasks[t].state = TaskState::Leased;
            let deadline = Instant::now() + Duration::from_millis(self.cfg.cell_timeout_ms);
            let sent = match self.workers.get_mut(&wid) {
                Some(w) => {
                    w.lease = Some((t, attempt, deadline));
                    match w.conn.as_mut() {
                        Some(conn) => send(conn, &msg.to_json()).is_ok(),
                        None => false,
                    }
                }
                None => false,
            };
            if !sent {
                // Broken pipe at assignment time: the worker is gone; the
                // normal loss path reclaims the lease and respawns.
                self.lose_worker(wid, false);
                continue;
            }
            if matches!(chaos, Some(ChaosAction::KillAssignee)) {
                // Assign-phase crash: the worker dies with the lease held;
                // the loss path reclaims and retries the cell.
                self.lose_worker(wid, false);
            }
        }
    }
}
