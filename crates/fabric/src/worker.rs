//! The worker side of the fabric: connect, announce, heartbeat, compute.
//!
//! A worker is deliberately thin — all scheduling intelligence lives in
//! the coordinator. The worker's obligations are exactly three:
//!
//! 1. **Announce** itself (`hello`) so the coordinator can match the
//!    connection to the spawned child (or register an external worker).
//! 2. **Heartbeat** on a side thread, so liveness is observable even while
//!    a long cell computes on the main thread.
//! 3. **Compute** assignments via the caller's closure and report exactly
//!    one `result` or `cell_error` line per assignment.
//!
//! Chaos directives riding on assignments are honored here: `stall` wedges
//! instead of computing (until the coordinator's lease timeout kills us or
//! the connection drops), and the two die-directives exit the process
//! abruptly around the report — the coordinator must recover either way.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use htm_analyze::Json;

use crate::proto::{send, Directive, ToCoordinator, ToWorker};

/// Exit code for chaos-directed deaths (distinguishable from real panics
/// in worker logs; the coordinator treats any death the same way).
pub const CHAOS_EXIT: i32 = 86;

fn locked_send(stream: &Mutex<TcpStream>, msg: &ToCoordinator) -> bool {
    let Ok(mut s) = stream.lock() else {
        return false;
    };
    send(&mut *s, &msg.to_json()).is_ok()
}

/// Connects to the coordinator at `addr` and serves assignments until
/// `shutdown`, EOF, or a connection error. `compute` maps an assigned cell
/// index to `Ok(serialized result)` or `Err(message)`; panics inside it
/// are the *caller's* job to catch (the CLI wraps it in `catch_unwind`).
///
/// Returns `Err` only for setup failures (connect, hello); once serving,
/// all exits are `Ok` — the coordinator judges us by our messages, not our
/// exit status.
pub fn serve(
    addr: &str,
    worker_id: u64,
    heartbeat_ms: u64,
    mut compute: impl FnMut(usize, &str) -> Result<Json, String>,
) -> Result<(), String> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("fabric worker {worker_id}: connect {addr}: {e}"))?;
    let reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("fabric worker {worker_id}: clone stream: {e}"))?,
    );
    let writer = Arc::new(Mutex::new(stream));

    if !locked_send(&writer, &ToCoordinator::Hello { worker: worker_id, pid: std::process::id() }) {
        return Err(format!("fabric worker {worker_id}: hello failed"));
    }

    // Heartbeat side thread: liveness while the main thread computes.
    let orphaned = Arc::new(AtomicBool::new(false));
    let hb_writer = Arc::clone(&writer);
    let hb_orphaned = Arc::clone(&orphaned);
    let hb = std::thread::spawn(move || {
        let period = Duration::from_millis(heartbeat_ms.max(1));
        while !hb_orphaned.load(Ordering::SeqCst) {
            if !locked_send(&hb_writer, &ToCoordinator::Heartbeat { worker: worker_id }) {
                hb_orphaned.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::sleep(period);
        }
    });

    let mut lines = reader.lines();
    while let Some(Ok(line)) = lines.next() {
        match ToWorker::parse(&line) {
            Some(ToWorker::Assign { cell, attempt, key, chaos }) => {
                if chaos == Directive::Stall {
                    // Wedge deliberately: keep heartbeating (a stalled cell
                    // is NOT a dead worker — only the lease timeout may
                    // reclaim it) until the coordinator gives up on us.
                    while !orphaned.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    break;
                }
                let outcome = compute(cell, &key);
                if chaos == Directive::DieBeforeReport {
                    std::process::exit(CHAOS_EXIT);
                }
                let msg = match outcome {
                    Ok(result) => ToCoordinator::Result { cell, attempt, result },
                    Err(error) => ToCoordinator::CellError { cell, attempt, error },
                };
                let sent = locked_send(&writer, &msg);
                if chaos == Directive::DieAfterReport {
                    std::process::exit(CHAOS_EXIT);
                }
                if !sent {
                    break;
                }
            }
            Some(ToWorker::Shutdown) | None => break,
        }
    }

    orphaned.store(true, Ordering::SeqCst);
    if let Ok(s) = writer.lock() {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    let _ = hb.join();
    Ok(())
}
