//! The coordinator/worker wire protocol: newline-delimited JSON over a
//! loopback TCP stream.
//!
//! Messages are tiny (an assignment is a cell index plus its content key;
//! a result is the cell's serialized metrics), so the framing is the
//! simplest thing that is robust against torn writes: one JSON object per
//! line, parsed with the same dependency-free [`Json`] the result cache
//! uses. A line that fails to parse is a protocol error and the peer is
//! treated as dead — the lease layer recovers the work.

use std::io::Write;

use htm_analyze::Json;

/// A chaos directive riding on an assignment: what the *worker* should do
/// to itself, used by the deterministic chaos harness to crash workers at
/// a chosen phase of the cell lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Directive {
    /// Compute and report normally.
    #[default]
    None,
    /// Wedge instead of computing (exercises the lease timeout + SIGKILL
    /// escalation path).
    Stall,
    /// Compute, then die without reporting (a crash between execute and
    /// commit).
    DieBeforeReport,
    /// Compute, report, then die (a crash after commit; the result must
    /// still count exactly once).
    DieAfterReport,
}

impl Directive {
    fn key(self) -> &'static str {
        match self {
            Directive::None => "none",
            Directive::Stall => "stall",
            Directive::DieBeforeReport => "die_before_report",
            Directive::DieAfterReport => "die_after_report",
        }
    }

    fn parse(s: &str) -> Option<Directive> {
        match s {
            "none" => Some(Directive::None),
            "stall" => Some(Directive::Stall),
            "die_before_report" => Some(Directive::DieBeforeReport),
            "die_after_report" => Some(Directive::DieAfterReport),
            _ => None,
        }
    }
}

/// A message travelling worker → coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum ToCoordinator {
    /// First message on a fresh connection: identifies the worker.
    Hello {
        /// The worker id the coordinator assigned at spawn time (or a
        /// self-chosen id for externally attached workers).
        worker: u64,
        /// The worker's OS pid (diagnostics only).
        pid: u32,
    },
    /// Periodic liveness beacon, sent even while a cell is computing.
    Heartbeat {
        /// Sender.
        worker: u64,
    },
    /// A finished cell.
    Result {
        /// Cell index (the coordinator's representative index for the
        /// cell's content key).
        cell: usize,
        /// Attempt number the assignment carried (stale-result detection).
        attempt: u32,
        /// The serialized cell result.
        result: Json,
    },
    /// A cell that failed in a way the worker could observe (panic caught,
    /// key mismatch against the worker's rebuilt grid).
    CellError {
        /// Cell index.
        cell: usize,
        /// Attempt number the assignment carried.
        attempt: u32,
        /// Human-readable cause.
        error: String,
    },
}

/// A message travelling coordinator → worker.
#[derive(Clone, Debug, PartialEq)]
pub enum ToWorker {
    /// Compute one cell.
    Assign {
        /// Cell index in the coordinator's work list.
        cell: usize,
        /// Attempt number (echoed back in the result).
        attempt: u32,
        /// The cell's full content key; the worker must verify it against
        /// its own rebuilt grid before computing (catches version or
        /// option drift between coordinator and worker binaries).
        key: String,
        /// Chaos directive (always [`Directive::None`] outside the chaos
        /// harness).
        chaos: Directive,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Reads field `k` as a non-negative integer no larger than `max`.
///
/// Wire input is untrusted: a raw `as` cast would silently fold `-1`, NaN,
/// or `1e300` into an in-range index, and a hostile or corrupt peer line
/// could then poison the coordinator's lease table. Anything non-integral
/// or out of range rejects the whole message instead.
fn uint(j: &Json, k: &str, max: u64) -> Option<u64> {
    let n = j.get(k).and_then(Json::as_f64)?;
    if !n.is_finite() || n.fract() != 0.0 || n < 0.0 || n > max as f64 {
        return None;
    }
    Some(n as u64)
}

fn idx(j: &Json, k: &str) -> Option<usize> {
    // Cell indexes and attempt counters live well inside f64's exact
    // integer range; cap there so the f64 → u64 round-trip is lossless.
    uint(j, k, 1 << 53).map(|n| n as usize)
}

impl ToCoordinator {
    /// Serializes to a single wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            ToCoordinator::Hello { worker, pid } => Json::Obj(vec![
                ("type".into(), Json::str("hello")),
                ("worker".into(), Json::Num(*worker as f64)),
                ("pid".into(), Json::Num(f64::from(*pid))),
            ]),
            ToCoordinator::Heartbeat { worker } => Json::Obj(vec![
                ("type".into(), Json::str("heartbeat")),
                ("worker".into(), Json::Num(*worker as f64)),
            ]),
            ToCoordinator::Result { cell, attempt, result } => Json::Obj(vec![
                ("type".into(), Json::str("result")),
                ("cell".into(), Json::Num(*cell as f64)),
                ("attempt".into(), Json::Num(f64::from(*attempt))),
                ("result".into(), result.clone()),
            ]),
            ToCoordinator::CellError { cell, attempt, error } => Json::Obj(vec![
                ("type".into(), Json::str("cell_error")),
                ("cell".into(), Json::Num(*cell as f64)),
                ("attempt".into(), Json::Num(f64::from(*attempt))),
                ("error".into(), Json::str(error.clone())),
            ]),
        }
    }

    /// Parses one wire line.
    pub fn parse(line: &str) -> Option<ToCoordinator> {
        let j = Json::parse(line.trim()).ok()?;
        match j.get("type")?.as_str()? {
            "hello" => Some(ToCoordinator::Hello {
                worker: uint(&j, "worker", 1 << 53)?,
                pid: uint(&j, "pid", u64::from(u32::MAX))? as u32,
            }),
            "heartbeat" => Some(ToCoordinator::Heartbeat { worker: uint(&j, "worker", 1 << 53)? }),
            "result" => Some(ToCoordinator::Result {
                cell: idx(&j, "cell")?,
                attempt: uint(&j, "attempt", u64::from(u32::MAX))? as u32,
                result: j.get("result")?.clone(),
            }),
            "cell_error" => Some(ToCoordinator::CellError {
                cell: idx(&j, "cell")?,
                attempt: uint(&j, "attempt", u64::from(u32::MAX))? as u32,
                error: j.get("error")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

impl ToWorker {
    /// Serializes to a single wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Assign { cell, attempt, key, chaos } => Json::Obj(vec![
                ("type".into(), Json::str("assign")),
                ("cell".into(), Json::Num(*cell as f64)),
                ("attempt".into(), Json::Num(f64::from(*attempt))),
                ("key".into(), Json::str(key.clone())),
                ("chaos".into(), Json::str(chaos.key())),
            ]),
            ToWorker::Shutdown => Json::Obj(vec![("type".into(), Json::str("shutdown"))]),
        }
    }

    /// Parses one wire line.
    pub fn parse(line: &str) -> Option<ToWorker> {
        let j = Json::parse(line.trim()).ok()?;
        match j.get("type")?.as_str()? {
            "assign" => Some(ToWorker::Assign {
                cell: idx(&j, "cell")?,
                attempt: uint(&j, "attempt", u64::from(u32::MAX))? as u32,
                key: j.get("key")?.as_str()?.to_string(),
                chaos: Directive::parse(j.get("chaos")?.as_str()?)?,
            }),
            "shutdown" => Some(ToWorker::Shutdown),
            _ => None,
        }
    }
}

/// Writes one message line; any I/O failure means the peer is gone and the
/// caller must treat the connection as dead.
pub fn send(w: &mut impl Write, json: &Json) -> std::io::Result<()> {
    let mut line = json.to_string();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_coordinator_round_trips() {
        let msgs = [
            ToCoordinator::Hello { worker: 3, pid: 12345 },
            ToCoordinator::Heartbeat { worker: 7 },
            ToCoordinator::Result {
                cell: 11,
                attempt: 2,
                result: Json::Obj(vec![("speedup".into(), Json::Num(1.5))]),
            },
            ToCoordinator::CellError {
                cell: 4,
                attempt: 3,
                error: "panic: \"index\" out\nof bounds".into(),
            },
        ];
        for m in msgs {
            let line = m.to_json().to_string();
            assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
            assert_eq!(ToCoordinator::parse(&line), Some(m));
        }
    }

    #[test]
    fn to_worker_round_trips() {
        for chaos in [
            Directive::None,
            Directive::Stall,
            Directive::DieBeforeReport,
            Directive::DieAfterReport,
        ] {
            let m = ToWorker::Assign { cell: 9, attempt: 1, key: "stamp|x|1t".into(), chaos };
            assert_eq!(ToWorker::parse(&m.to_json().to_string()), Some(m));
        }
        let m = ToWorker::Shutdown;
        assert_eq!(ToWorker::parse(&m.to_json().to_string()), Some(m));
    }

    #[test]
    fn garbage_lines_are_rejected_not_panicked() {
        assert_eq!(ToCoordinator::parse(""), None);
        assert_eq!(ToCoordinator::parse("{\"type\":\"result\"}"), None);
        assert_eq!(ToCoordinator::parse("{\"type\":\"unknown\"}"), None);
        assert_eq!(ToWorker::parse("{\"typ"), None);
    }

    #[test]
    fn hostile_numerics_are_rejected_not_wrapped() {
        // Each of these would survive a bare `as` cast by folding into a
        // legal-looking value (negative → 0, NaN → 0, 1e300 → saturate);
        // the parser must reject the message outright.
        for line in [
            r#"{"type":"result","cell":-1,"attempt":1,"result":{}}"#,
            r#"{"type":"result","cell":1.5,"attempt":1,"result":{}}"#,
            r#"{"type":"result","cell":1e300,"attempt":1,"result":{}}"#,
            r#"{"type":"cell_error","cell":3,"attempt":-2,"error":"x"}"#,
            r#"{"type":"hello","worker":0,"pid":4294967296}"#,
            r#"{"type":"heartbeat","worker":NaN}"#,
            r#"{"type":"hello","worker":"7","pid":1}"#,
        ] {
            assert_eq!(ToCoordinator::parse(line), None, "accepted hostile line: {line}");
        }
        assert_eq!(
            ToWorker::parse(r#"{"type":"assign","cell":-4,"attempt":0,"key":"k","chaos":"none"}"#),
            None
        );
        // Boundary values still parse.
        let ok = r#"{"type":"hello","worker":9007199254740992,"pid":4294967295}"#;
        assert_eq!(
            ToCoordinator::parse(ok),
            Some(ToCoordinator::Hello { worker: 1 << 53, pid: u32::MAX })
        );
    }

    #[test]
    fn pathological_documents_never_panic_the_wire_parser() {
        // Deep nesting (stack-overflow probe), huge strings, truncated
        // escapes: all must come back as a clean rejection.
        let deep = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
        assert_eq!(ToCoordinator::parse(&deep), None);
        let nested_obj = format!("{}1", "{\"result\":[".repeat(10_000));
        assert_eq!(ToWorker::parse(&nested_obj), None);
        assert_eq!(ToCoordinator::parse("{\"type\":\"result\",\"error\":\"\\ud800\\u0041"), None);
    }
}
