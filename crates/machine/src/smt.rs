//! SMT core-occupancy registry.
//!
//! On Blue Gene/Q, Intel Core and POWER8 the HTM tracking resources of a
//! core are shared by its SMT threads (Section 2), so a transaction's
//! effective capacity depends on how many sibling threads are *currently*
//! running transactions. The [`CoreRegistry`] counts in-transaction threads
//! per core; the engine samples the count at `tbegin` and divides the
//! capacity budget by it.

use std::sync::atomic::{AtomicU32, Ordering::SeqCst};

/// Tracks, per physical core, how many hardware threads are currently
/// inside a transaction.
#[derive(Debug)]
pub struct CoreRegistry {
    in_tx: Vec<AtomicU32>,
    running: Vec<AtomicU32>,
}

impl CoreRegistry {
    /// Creates a registry for `cores` physical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> CoreRegistry {
        assert!(cores > 0, "machine must have at least one core");
        let mut in_tx = Vec::with_capacity(cores as usize);
        in_tx.resize_with(cores as usize, || AtomicU32::new(0));
        let mut running = Vec::with_capacity(cores as usize);
        running.resize_with(cores as usize, || AtomicU32::new(0));
        CoreRegistry { in_tx, running }
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.in_tx.len() as u32
    }

    /// Marks a thread on `core` as entering a transaction and returns the
    /// resulting number of transactional threads on that core (≥ 1): the
    /// capacity-sharing factor.
    pub fn enter_tx(&self, core: u32) -> u32 {
        self.in_tx[core as usize].fetch_add(1, SeqCst) + 1
    }

    /// Marks a thread on `core` as leaving its transaction.
    pub fn exit_tx(&self, core: u32) {
        let prev = self.in_tx[core as usize].fetch_sub(1, SeqCst);
        debug_assert!(prev > 0, "exit_tx without matching enter_tx");
    }

    /// Registers a worker thread as running on `core` (for the whole
    /// experiment, transaction or not). Used for memory-concurrency costs.
    pub fn thread_started(&self, core: u32) {
        self.running[core as usize].fetch_add(1, SeqCst);
    }

    /// Unregisters a worker thread from `core`.
    pub fn thread_stopped(&self, core: u32) {
        let prev = self.running[core as usize].fetch_sub(1, SeqCst);
        debug_assert!(prev > 0, "thread_stopped without thread_started");
    }

    /// Total worker threads currently running on the machine.
    pub fn threads_running(&self) -> u32 {
        self.running.iter().map(|c| c.load(SeqCst)).sum()
    }

    /// Worker threads currently running on `core` (SMT co-residency).
    pub fn threads_on(&self, core: u32) -> u32 {
        self.running[core as usize].load(SeqCst)
    }

    /// Transactional threads currently on `core` (diagnostics).
    pub fn tx_threads_on(&self, core: u32) -> u32 {
        self.in_tx[core as usize].load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_counts_share() {
        let r = CoreRegistry::new(4);
        assert_eq!(r.enter_tx(0), 1);
        assert_eq!(r.enter_tx(0), 2, "second SMT thread shares the core");
        assert_eq!(r.enter_tx(1), 1, "other core unaffected");
        r.exit_tx(0);
        assert_eq!(r.tx_threads_on(0), 1);
        r.exit_tx(0);
        r.exit_tx(1);
        assert_eq!(r.tx_threads_on(0), 0);
    }

    #[test]
    fn running_thread_census() {
        let r = CoreRegistry::new(2);
        r.thread_started(0);
        r.thread_started(1);
        r.thread_started(1);
        assert_eq!(r.threads_running(), 3);
        r.thread_stopped(1);
        assert_eq!(r.threads_running(), 2);
    }

    #[test]
    fn concurrent_enter_exit_is_balanced() {
        use std::sync::Arc;
        let r = Arc::new(CoreRegistry::new(1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let share = r.enter_tx(0);
                    assert!((1..=8).contains(&share));
                    r.exit_tx(0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.tx_threads_on(0), 0);
    }
}
