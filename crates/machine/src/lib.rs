//! # htm-machine — the four platform models
//!
//! Encodes Table 1 of *Nakaike et al., ISCA 2015* as executable models: for
//! each of Blue Gene/Q, zEC12, Intel Core i7-4770 and POWER8 a declarative
//! [`MachineConfig`] (geometry, capacities, cycle costs, feature flags) plus
//! the stateful hardware structures the transaction engine consults at run
//! time:
//!
//! * [`tracker::Tracker`] — capacity tracking (L1 + extension, TMCAM, or
//!   byte budget),
//! * [`specid::SpecIdPool`] — Blue Gene/Q's 128 speculation IDs with batched
//!   lazy reclaim,
//! * [`prefetch::Prefetcher`] — Intel's stride prefetcher that pollutes the
//!   transactional read set,
//! * [`smt::CoreRegistry`] — SMT capacity sharing.
//!
//! ```
//! use htm_machine::{Machine, Platform};
//!
//! let m = Machine::new(Platform::Power8.config());
//! assert_eq!(m.config().load_capacity_bytes(), 8 * 1024); // the 8 KB TMCAM
//! let mut tracker = m.new_tracker();
//! tracker.begin(1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod prefetch;
pub mod smt;
pub mod specid;
pub mod tracker;

pub use config::{BgqMode, ConstrainedLimits, MachineConfig, Platform, SpecIdConfig};
pub use prefetch::Prefetcher;
pub use smt::CoreRegistry;
pub use specid::SpecIdPool;
pub use tracker::{Tracker, TrackerKind};

/// A platform model instance: the configuration plus the shared hardware
/// state (core registry, speculation-ID pool) for one experiment run.
///
/// Shared across worker threads behind an `Arc`.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    cores: CoreRegistry,
    spec_ids: Option<SpecIdPool>,
}

impl Machine {
    /// Instantiates the shared hardware state for `config`.
    pub fn new(config: MachineConfig) -> Machine {
        let cores = CoreRegistry::new(config.cores);
        let spec_ids = config.spec_ids.map(SpecIdPool::new);
        Machine { config, cores, spec_ids }
    }

    /// The platform configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The SMT core-occupancy registry.
    pub fn cores(&self) -> &CoreRegistry {
        &self.cores
    }

    /// The speculation-ID pool, if this platform has one (Blue Gene/Q).
    pub fn spec_ids(&self) -> Option<&SpecIdPool> {
        self.spec_ids.as_ref()
    }

    /// Creates a per-thread capacity tracker for this platform.
    pub fn new_tracker(&self) -> Tracker {
        Tracker::new(self.config.tracker)
    }

    /// Creates a per-thread prefetcher model for this platform.
    pub fn new_prefetcher(&self) -> Prefetcher {
        Prefetcher::new(self.config.prefetcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_wires_platform_features() {
        let bgq = Machine::new(Platform::BlueGeneQ.config());
        assert!(bgq.spec_ids().is_some());
        assert!(!bgq.new_prefetcher().is_enabled());

        let intel = Machine::new(Platform::IntelCore.config());
        assert!(intel.spec_ids().is_none());
        assert!(intel.new_prefetcher().is_enabled());
        assert_eq!(intel.cores().cores(), 4);
    }

    #[test]
    fn all_platforms_instantiate() {
        for p in Platform::ALL {
            let m = Machine::new(p.config());
            let mut t = m.new_tracker();
            t.begin(1);
            assert!(t.on_first_load(htm_core::LineId(0), false).is_ok(), "{p}");
        }
    }
}
