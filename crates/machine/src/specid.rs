//! Blue Gene/Q speculation-ID pool (Section 2.1).
//!
//! Blue Gene/Q tags every transaction's L2 footprint with one of 128
//! hardware speculation IDs. An ID is not reusable immediately after the
//! transaction ends: the L2 must be scrubbed of the tag first, which the
//! hardware does lazily in batches. When the free pool is empty, the start
//! of a new transaction *blocks* until a reclaim completes — the paper found
//! this to be the scalability bottleneck for ssca2's many short
//! transactions.
//!
//! The model: [`SpecIdPool::acquire`] consumes a free ID or, when none is
//! free, performs/awaits a batched reclaim of all released IDs and reports
//! the simulated cycles spent blocked, which the transaction engine charges
//! to the thread's clock.

use std::sync::atomic::{AtomicU32, Ordering::SeqCst};

use crate::config::SpecIdConfig;

/// Shared pool of Blue Gene/Q speculation IDs.
#[derive(Debug)]
pub struct SpecIdPool {
    avail: AtomicU32,
    pending: AtomicU32,
    reclaim_cycles: u64,
    reclaims: AtomicU32,
}

impl SpecIdPool {
    /// Creates a pool with the given configuration.
    pub fn new(cfg: SpecIdConfig) -> SpecIdPool {
        SpecIdPool {
            avail: AtomicU32::new(cfg.total),
            pending: AtomicU32::new(0),
            reclaim_cycles: cfg.reclaim_cycles,
            reclaims: AtomicU32::new(0),
        }
    }

    /// Acquires a speculation ID for a new transaction, returning the
    /// simulated cycles the thread spent blocked waiting for IDs.
    ///
    /// Never fails: like the real machine, the begin blocks until an ID is
    /// available (every acquired ID is eventually released, so reclaim makes
    /// progress as long as transactions finish).
    pub fn acquire(&self) -> u64 {
        let mut waited = 0u64;
        loop {
            let a = self.avail.load(SeqCst);
            if a > 0 {
                if self.avail.compare_exchange(a, a - 1, SeqCst, SeqCst).is_ok() {
                    return waited;
                }
                continue;
            }
            // Free pool empty: batch-reclaim the released IDs.
            let p = self.pending.swap(0, SeqCst);
            if p > 0 {
                self.avail.fetch_add(p, SeqCst);
                self.reclaims.fetch_add(1, SeqCst);
                waited += self.reclaim_cycles;
            } else {
                // Nothing released yet; wait for other threads to finish.
                waited += self.reclaim_cycles / 8;
                std::thread::yield_now();
            }
        }
    }

    /// Releases an ID after the transaction commits or aborts. The ID is
    /// not immediately reusable; it enters the pending (unscrubbed) set.
    pub fn release(&self) {
        self.pending.fetch_add(1, SeqCst);
    }

    /// Charges the cost of one batched reclaim as if the free pool had been
    /// found empty, without touching the pool (fault injection: forced
    /// speculation-ID starvation stalls). Returns the simulated cycles the
    /// caller must charge to its clock.
    pub fn forced_stall(&self) -> u64 {
        self.reclaims.fetch_add(1, SeqCst);
        self.reclaim_cycles
    }

    /// Permanently removes up to `n` free IDs from the pool (fault
    /// injection: speculation-ID starvation). At least one ID always
    /// remains, so [`SpecIdPool::acquire`] can still make progress — the
    /// pool degenerates into a serialization bottleneck, never a deadlock.
    /// Returns how many IDs were actually removed.
    pub fn drain(&self, n: u32) -> u32 {
        loop {
            let a = self.avail.load(SeqCst);
            let take = n.min(a.saturating_sub(1));
            if take == 0 {
                return 0;
            }
            if self.avail.compare_exchange(a, a - take, SeqCst, SeqCst).is_ok() {
                return take;
            }
        }
    }

    /// Number of batch reclaims performed so far (diagnostics).
    pub fn reclaim_count(&self) -> u32 {
        self.reclaims.load(SeqCst)
    }

    /// IDs currently free (diagnostics).
    pub fn available(&self) -> u32 {
        self.avail.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total: u32) -> SpecIdPool {
        SpecIdPool::new(SpecIdConfig { total, reclaim_cycles: 1000 })
    }

    #[test]
    fn acquire_is_free_while_ids_remain() {
        let p = pool(4);
        for _ in 0..4 {
            assert_eq!(p.acquire(), 0);
        }
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn exhaustion_triggers_reclaim_and_charges_cycles() {
        let p = pool(2);
        assert_eq!(p.acquire(), 0);
        assert_eq!(p.acquire(), 0);
        p.release();
        p.release();
        // Pool empty, two pending: the next acquire reclaims and pays.
        let waited = p.acquire();
        assert_eq!(waited, 1000);
        assert_eq!(p.reclaim_count(), 1);
        // One ID left free after the batch (2 reclaimed - 1 taken).
        assert_eq!(p.available(), 1);
        assert_eq!(p.acquire(), 0);
    }

    #[test]
    fn drain_keeps_at_least_one_id() {
        let p = pool(8);
        assert_eq!(p.drain(4), 4);
        assert_eq!(p.available(), 4);
        assert_eq!(p.drain(100), 3, "drain stops at one remaining ID");
        assert_eq!(p.available(), 1);
        assert_eq!(p.drain(100), 0);
        // The surviving ID still cycles through acquire/release/reclaim.
        assert_eq!(p.acquire(), 0);
        p.release();
        assert_eq!(p.acquire(), 1000, "exhausted pool pays a reclaim");
    }

    #[test]
    fn forced_stall_charges_without_consuming_ids() {
        let p = pool(4);
        assert_eq!(p.forced_stall(), 1000);
        assert_eq!(p.available(), 4, "forced stall leaves the pool intact");
        assert_eq!(p.reclaim_count(), 1);
    }

    #[test]
    fn short_transactions_churn_reclaims() {
        let p = pool(8);
        let mut total_wait = 0;
        for _ in 0..100 {
            total_wait += p.acquire();
            p.release();
        }
        assert!(p.reclaim_count() >= 10, "reclaims: {}", p.reclaim_count());
        assert!(total_wait >= 10_000);
    }

    #[test]
    fn concurrent_acquire_release_preserves_ids() {
        use std::sync::Arc;
        let p = Arc::new(pool(16));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5000 {
                    let _ = p.acquire();
                    p.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All IDs are back in avail+pending.
        let total = p.available() + p.pending.load(SeqCst);
        assert_eq!(total, 16);
    }
}
