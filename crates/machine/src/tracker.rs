//! Transaction-capacity tracking structures.
//!
//! Each platform bounds the transactional footprint with a different
//! hardware structure (Section 2): zEC12 and Intel Core track reads in the
//! L1 with an overflow extension and bound stores by a small store
//! cache / the L1 itself; POWER8 bounds *everything* by a 64-entry CAM;
//! Blue Gene/Q gives each core a byte budget in the shared L2. A
//! [`Tracker`] is the per-thread embodiment of one of these structures: the
//! transaction engine resets it at `tbegin` (with the current SMT share) and
//! consults it on the first access to every line.

use std::collections::HashMap;

use htm_core::{AbortCause, LineId};

/// Declarative description of a platform's capacity structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrackerKind {
    /// L1-based read tracking with an overflow extension for evicted read
    /// lines, and a separate store budget (zEC12, Intel Core).
    SetAssoc {
        /// L1 data-cache size in bytes.
        l1_bytes: u32,
        /// L1 associativity.
        ways: u32,
        /// Tracking granularity (cache-line size) in bytes.
        line_bytes: u32,
        /// Total transactional-load capacity in bytes (L1 + extension).
        load_total_bytes: u64,
        /// Total transactional-store capacity in bytes.
        store_total_bytes: u64,
        /// Whether stores are also subject to L1 way conflicts (Intel Core:
        /// stores must stay in the L1; zEC12: stores go to the fully
        /// associative gathering store cache).
        store_set_assoc: bool,
    },
    /// A content-addressable memory bounding loads + stores together
    /// (POWER8's L2 TMCAM).
    Tmcam {
        /// Number of CAM entries (paper: 64).
        entries: u32,
        /// Bytes tracked per entry (the L2 line size, 128).
        line_bytes: u32,
    },
    /// A combined byte budget for loads + stores (Blue Gene/Q's L2 slice).
    ByteBudget {
        /// Combined transactional capacity in bytes.
        combined_bytes: u64,
        /// Tracking granularity in bytes.
        line_bytes: u32,
    },
}

impl TrackerKind {
    /// Transactional-load capacity in bytes (Table 1 row 2).
    pub fn load_capacity_bytes(&self) -> u64 {
        match *self {
            TrackerKind::SetAssoc { load_total_bytes, .. } => load_total_bytes,
            TrackerKind::Tmcam { entries, line_bytes } => entries as u64 * line_bytes as u64,
            TrackerKind::ByteBudget { combined_bytes, .. } => combined_bytes,
        }
    }

    /// Transactional-store capacity in bytes (Table 1 row 3).
    pub fn store_capacity_bytes(&self) -> u64 {
        match *self {
            TrackerKind::SetAssoc { store_total_bytes, .. } => store_total_bytes,
            TrackerKind::Tmcam { entries, line_bytes } => entries as u64 * line_bytes as u64,
            TrackerKind::ByteBudget { combined_bytes, .. } => combined_bytes,
        }
    }

    /// The tracking granularity (line size) in bytes.
    pub fn line_bytes(&self) -> u32 {
        match *self {
            TrackerKind::SetAssoc { line_bytes, .. }
            | TrackerKind::Tmcam { line_bytes, .. }
            | TrackerKind::ByteBudget { line_bytes, .. } => line_bytes,
        }
    }

    /// Static capacity prediction: would a transaction whose read set is
    /// `load_lines` and write set is `store_lines` (line IDs at this
    /// structure's granularity; duplicates are ignored) overflow this
    /// structure, at the given SMT `share`?
    ///
    /// Every rule the stateful [`Tracker`] enforces is monotone in the
    /// footprint counts, so the final-footprint check here agrees exactly
    /// with feeding the accesses through a `Tracker` in *any* order —
    /// which is what makes "this block cannot commit in HW on platform X"
    /// a sound static verdict. Only the read/write attribution of the
    /// returned cause is order-dependent: when the combined footprint
    /// overflows a union-bounded structure (TMCAM, byte budget), the load
    /// side is blamed only if the loads alone overflow.
    pub fn predict_abort(
        &self,
        share: u32,
        load_lines: &[LineId],
        store_lines: &[LineId],
    ) -> Option<AbortCause> {
        let share = share.max(1);
        let loads: std::collections::HashSet<LineId> = load_lines.iter().copied().collect();
        let stores: std::collections::HashSet<LineId> = store_lines.iter().copied().collect();
        let union = loads.union(&stores).count() as u64;
        match *self {
            TrackerKind::SetAssoc {
                l1_bytes,
                ways,
                line_bytes,
                load_total_bytes,
                store_total_bytes,
                store_set_assoc,
            } => {
                if loads.len() as u64 * line_bytes as u64 > load_total_bytes / share as u64 {
                    return Some(AbortCause::CapacityRead);
                }
                if stores.len() as u64 * line_bytes as u64 > store_total_bytes / share as u64 {
                    return Some(AbortCause::CapacityWrite);
                }
                if store_set_assoc {
                    let n_sets = l1_bytes / (line_bytes * ways);
                    let mut occupancy: HashMap<u32, u32> = HashMap::new();
                    for l in &stores {
                        let occ = occupancy.entry(l.0 % n_sets).or_insert(0);
                        *occ += 1;
                        if *occ > ways / share {
                            return Some(AbortCause::CapacityWrite);
                        }
                    }
                }
                None
            }
            TrackerKind::Tmcam { entries, .. } => {
                let bound = (entries / share).max(1) as u64;
                if loads.len() as u64 > bound {
                    Some(AbortCause::CapacityRead)
                } else if union > bound {
                    Some(AbortCause::CapacityWrite)
                } else {
                    None
                }
            }
            TrackerKind::ByteBudget { combined_bytes, line_bytes } => {
                let budget = combined_bytes / share as u64;
                if loads.len() as u64 * line_bytes as u64 > budget {
                    Some(AbortCause::CapacityRead)
                } else if union * line_bytes as u64 > budget {
                    Some(AbortCause::CapacityWrite)
                } else {
                    None
                }
            }
        }
    }
}

/// Per-thread capacity tracker; reset at every transaction begin.
///
/// The transaction engine calls [`Tracker::on_first_load`] /
/// [`Tracker::on_first_store`] exactly once per (transaction, line,
/// direction), passing whether the line is already tracked in the other
/// direction so that union-based structures (TMCAM, byte budget) do not
/// double-count.
#[derive(Debug)]
pub struct Tracker {
    kind: TrackerKind,
    share: u32,
    load_lines: u64,
    store_lines: u64,
    union_lines: u64,
    store_sets: HashMap<u32, u32>,
}

impl Tracker {
    /// Creates a tracker for the given structure.
    pub fn new(kind: TrackerKind) -> Tracker {
        Tracker {
            kind,
            share: 1,
            load_lines: 0,
            store_lines: 0,
            union_lines: 0,
            store_sets: HashMap::new(),
        }
    }

    /// Resets for a new transaction. `share` is the number of SMT threads
    /// concurrently running transactions on this core (≥ 1); hardware
    /// resources are divided among them (Section 2, "resource sharing among
    /// SMT threads").
    pub fn begin(&mut self, share: u32) {
        self.share = share.max(1);
        self.load_lines = 0;
        self.store_lines = 0;
        self.union_lines = 0;
        self.store_sets.clear();
    }

    /// Distinct lines loaded so far in this transaction.
    pub fn load_lines(&self) -> u64 {
        self.load_lines
    }

    /// Distinct lines stored so far in this transaction.
    pub fn store_lines(&self) -> u64 {
        self.store_lines
    }

    /// The capacity structure this tracker models.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// Records the first transactional load of `line`.
    ///
    /// # Errors
    ///
    /// Returns [`AbortCause::CapacityRead`] if the structure overflows.
    pub fn on_first_load(&mut self, line: LineId, already_written: bool) -> Result<(), AbortCause> {
        self.load_lines += 1;
        if !already_written {
            self.union_lines += 1;
        }
        match self.kind {
            TrackerKind::SetAssoc { line_bytes, load_total_bytes, .. } => {
                // Evicted read lines spill into the extension structure, so
                // only the total budget bounds loads.
                let budget = load_total_bytes / self.share as u64;
                if self.load_lines * line_bytes as u64 > budget {
                    return Err(AbortCause::CapacityRead);
                }
            }
            TrackerKind::Tmcam { entries, .. } => {
                if self.union_lines > (entries / self.share).max(1) as u64 {
                    return Err(AbortCause::CapacityRead);
                }
            }
            TrackerKind::ByteBudget { combined_bytes, line_bytes } => {
                let budget = combined_bytes / self.share as u64;
                if self.union_lines * line_bytes as u64 > budget {
                    return Err(AbortCause::CapacityRead);
                }
            }
        }
        let _ = line;
        Ok(())
    }

    /// Records the first transactional store to `line`.
    ///
    /// # Errors
    ///
    /// Returns [`AbortCause::CapacityWrite`] if the structure overflows.
    pub fn on_first_store(&mut self, line: LineId, already_read: bool) -> Result<(), AbortCause> {
        self.store_lines += 1;
        if !already_read {
            self.union_lines += 1;
        }
        match self.kind {
            TrackerKind::SetAssoc {
                l1_bytes,
                ways,
                line_bytes,
                store_total_bytes,
                store_set_assoc,
                ..
            } => {
                let budget = store_total_bytes / self.share as u64;
                if self.store_lines * line_bytes as u64 > budget {
                    return Err(AbortCause::CapacityWrite);
                }
                if store_set_assoc {
                    // Speculatively written lines cannot be evicted from the
                    // L1: a way conflict aborts even below the byte budget
                    // (the "cache-way conflict" capacity aborts of Section 2).
                    let n_sets = l1_bytes / (line_bytes * ways);
                    let set = line.0 % n_sets;
                    let occ = self.store_sets.entry(set).or_insert(0);
                    *occ += 1;
                    if *occ > ways / self.share {
                        return Err(AbortCause::CapacityWrite);
                    }
                }
            }
            TrackerKind::Tmcam { entries, .. } => {
                if self.union_lines > (entries / self.share).max(1) as u64 {
                    return Err(AbortCause::CapacityWrite);
                }
            }
            TrackerKind::ByteBudget { combined_bytes, line_bytes } => {
                let budget = combined_bytes / self.share as u64;
                if self.union_lines * line_bytes as u64 > budget {
                    return Err(AbortCause::CapacityWrite);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmcam() -> Tracker {
        Tracker::new(TrackerKind::Tmcam { entries: 64, line_bytes: 128 })
    }

    #[test]
    fn tmcam_bounds_union_of_loads_and_stores() {
        let mut t = tmcam();
        t.begin(1);
        for i in 0..32 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        for i in 32..64 {
            t.on_first_store(LineId(i), false).unwrap();
        }
        // 65th distinct line overflows.
        assert_eq!(t.on_first_load(LineId(64), false), Err(AbortCause::CapacityRead));
    }

    #[test]
    fn tmcam_store_to_read_line_is_free() {
        let mut t = tmcam();
        t.begin(1);
        for i in 0..64 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        // Upgrading an existing entry to write does not allocate.
        assert!(t.on_first_store(LineId(0), true).is_ok());
        assert_eq!(t.on_first_store(LineId(100), false), Err(AbortCause::CapacityWrite));
    }

    #[test]
    fn tmcam_smt_share_divides_entries() {
        let mut t = tmcam();
        t.begin(8); // SMT-8: 8 entries each
        for i in 0..8 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        assert_eq!(t.on_first_load(LineId(8), false), Err(AbortCause::CapacityRead));
    }

    fn intel() -> Tracker {
        Tracker::new(TrackerKind::SetAssoc {
            l1_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            load_total_bytes: 4 * 1024 * 1024,
            store_total_bytes: 22 * 1024,
            store_set_assoc: true,
        })
    }

    #[test]
    fn intel_load_capacity_exceeds_l1() {
        let mut t = intel();
        t.begin(1);
        // 1 MB of loads (16384 lines) is far beyond the L1 but fine.
        for i in 0..16384 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        // 4 MB is the limit.
        for i in 16384..65536 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        assert_eq!(t.on_first_load(LineId(70000), false), Err(AbortCause::CapacityRead));
    }

    #[test]
    fn intel_store_byte_budget() {
        let mut t = intel();
        t.begin(1);
        // 22 KB = 352 lines of 64 B. Use stride 64 to spread over all sets
        // (Line i maps to set i % 64), so way conflicts don't fire first:
        // 352 lines over 64 sets is 5..6 per set, under 8 ways.
        let mut n = 0;
        let mut i = 0;
        while n < 352 {
            t.on_first_store(LineId(i), false).unwrap();
            i += 1;
            n += 1;
        }
        assert!(t.on_first_store(LineId(i), false).is_err());
    }

    #[test]
    fn intel_way_conflict_aborts_below_budget() {
        let mut t = intel();
        t.begin(1);
        // 9 store lines mapping to the same set (stride = n_sets = 64).
        for k in 0..8 {
            t.on_first_store(LineId(k * 64), false).unwrap();
        }
        assert_eq!(t.on_first_store(LineId(8 * 64), false), Err(AbortCause::CapacityWrite));
    }

    #[test]
    fn intel_smt_halves_store_capacity() {
        let mut t = intel();
        t.begin(2);
        let mut ok = 0;
        for i in 0.. {
            if t.on_first_store(LineId(i), false).is_err() {
                break;
            }
            ok += 1;
        }
        // 11 KB / 64 B = 176 lines (way conflicts may cut in slightly
        // earlier depending on distribution; sequential lines spread evenly).
        assert_eq!(ok, 176);
    }

    #[test]
    fn zec12_stores_have_no_way_conflicts() {
        let mut t = Tracker::new(TrackerKind::SetAssoc {
            l1_bytes: 96 * 1024,
            ways: 6,
            line_bytes: 256,
            load_total_bytes: 1024 * 1024,
            store_total_bytes: 8 * 1024,
            store_set_assoc: false,
        });
        t.begin(1);
        // All stores to the same set: the gathering store cache is fully
        // associative, only the 8 KB budget (32 lines of 256 B) bounds it.
        for k in 0..32 {
            t.on_first_store(LineId(k * 1024), false).unwrap();
        }
        assert_eq!(t.on_first_store(LineId(32 * 1024), false), Err(AbortCause::CapacityWrite));
    }

    #[test]
    fn byte_budget_counts_union() {
        let mut t = Tracker::new(TrackerKind::ByteBudget { combined_bytes: 1024, line_bytes: 128 });
        t.begin(1);
        // 8 lines of 128 B fill 1 KB.
        for i in 0..4 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        for i in 4..8 {
            t.on_first_store(LineId(i), false).unwrap();
        }
        assert!(t.on_first_load(LineId(8), false).is_err());
        // But re-accessing tracked lines in the other direction is free.
        t.begin(1);
        for i in 0..8 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        assert!(t.on_first_store(LineId(3), true).is_ok());
    }

    #[test]
    fn begin_resets_state() {
        let mut t = tmcam();
        t.begin(1);
        for i in 0..64 {
            t.on_first_load(LineId(i), false).unwrap();
        }
        assert!(t.on_first_load(LineId(64), false).is_err());
        t.begin(1);
        assert!(t.on_first_load(LineId(64), false).is_ok());
        assert_eq!(t.load_lines(), 1);
        assert_eq!(t.store_lines(), 0);
    }

    #[test]
    fn capacity_bytes_reporting() {
        let k = TrackerKind::Tmcam { entries: 64, line_bytes: 128 };
        assert_eq!(k.load_capacity_bytes(), 8192);
        assert_eq!(k.store_capacity_bytes(), 8192);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::Platform;
    use proptest::prelude::*;

    /// Feeds a footprint through a stateful tracker in a given interleaved
    /// order; Some(cause) when any access overflows.
    fn run_tracker(
        kind: TrackerKind,
        share: u32,
        accesses: &[(LineId, bool)],
    ) -> Option<AbortCause> {
        let mut t = Tracker::new(kind);
        t.begin(share);
        let mut read = std::collections::HashSet::new();
        let mut written = std::collections::HashSet::new();
        for &(line, is_store) in accesses {
            if is_store {
                if written.insert(line) {
                    if let Err(c) = t.on_first_store(line, read.contains(&line)) {
                        return Some(c);
                    }
                }
            } else if read.insert(line) {
                if let Err(c) = t.on_first_load(line, written.contains(&line)) {
                    return Some(c);
                }
            }
        }
        None
    }

    fn arb_accesses() -> impl Strategy<Value = Vec<(u32, bool)>> {
        // Line IDs drawn from a small range so footprints regularly cross
        // each platform's (share-divided) bounds; at most 600 accesses.
        prop::collection::vec((0u32..4000, any::<bool>()), 0..600)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The order-free static prediction agrees with the stateful
        /// tracker on *whether* a footprint overflows, on all four
        /// platforms, at every SMT share, in whatever order the accesses
        /// arrive. (The read/write attribution of the cause is
        /// order-dependent by design; only is_some is compared.)
        #[test]
        fn prediction_matches_stateful_tracker(
            accesses in arb_accesses(),
            share in 1u32..9,
            platform_idx in 0usize..4,
            reversed in any::<bool>(),
        ) {
            let platform = Platform::ALL[platform_idx];
            let kind = platform.config().tracker;
            let mut ordered: Vec<(LineId, bool)> =
                accesses.iter().map(|&(l, s)| (LineId(l), s)).collect();
            if reversed {
                ordered.reverse();
            }
            let actual = run_tracker(kind, share, &ordered);
            let loads: Vec<LineId> =
                ordered.iter().filter(|&&(_, s)| !s).map(|&(l, _)| l).collect();
            let stores: Vec<LineId> =
                ordered.iter().filter(|&&(_, s)| s).map(|&(l, _)| l).collect();
            let predicted = kind.predict_abort(share, &loads, &stores);
            prop_assert!(
                predicted.is_some() == actual.is_some(),
                "platform {} share {}: predicted {:?}, actual {:?}",
                platform, share, predicted, actual
            );
        }
    }
}
