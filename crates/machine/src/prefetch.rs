//! Hardware-prefetcher model (Intel Core; Section 5.1).
//!
//! The paper discovered that Intel Core's stride prefetcher pulls the *next*
//! cache line into the transactional read set when a transaction streams
//! through memory: in kmeans, updating one (line-aligned, padded) cluster
//! prefetches the first line of the neighbouring cluster, and a concurrent
//! update of that neighbour then aborts the transaction even though it never
//! touched the neighbour. Intel developers validated the finding.
//!
//! The model is a per-thread sequential-stride detector: when a transaction
//! accesses line `L` immediately after line `L-1`, the prefetcher "fetches"
//! line `L+1`, and — because the HTM monitors whatever sits in the L1 — the
//! engine adds `L+1` to the transaction's *monitored read set* without
//! reading any data.

use htm_core::LineId;

/// Streams tracked concurrently (real L2 streamers track dozens; a handful
/// suffices for the benchmarks' interleaved access patterns — e.g. kmeans
/// alternates between the point row and the accumulator, which a
/// single-stream detector would never see as sequential).
const STREAMS: usize = 4;

/// Per-thread sequential-stride prefetcher with multi-stream detection.
#[derive(Debug, Default)]
pub struct Prefetcher {
    enabled: bool,
    streams: [Option<LineId>; STREAMS],
    next_victim: usize,
}

impl Prefetcher {
    /// Creates a prefetcher; disabled prefetchers never emit prefetches
    /// (the paper's "disable the hardware prefetching" experiment).
    pub fn new(enabled: bool) -> Prefetcher {
        Prefetcher { enabled, streams: [None; STREAMS], next_victim: 0 }
    }

    /// Whether the prefetcher is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Resets the stride detectors (at transaction begin).
    pub fn begin_tx(&mut self) {
        self.streams = [None; STREAMS];
        self.next_victim = 0;
    }

    /// Observes a demand access to `line`; returns the lines to prefetch
    /// into the monitored read set if a stream's sequential stride fires
    /// (the streamer runs two lines ahead of a confirmed stride).
    pub fn on_access(&mut self, line: LineId) -> [Option<LineId>; 2] {
        if !self.enabled {
            return [None, None];
        }
        // A continuation of an existing stream?
        for s in &mut self.streams {
            match s {
                Some(prev) if line.0 == prev.0.wrapping_add(1) => {
                    *s = Some(line);
                    return [
                        Some(LineId(line.0.wrapping_add(1))),
                        Some(LineId(line.0.wrapping_add(2))),
                    ];
                }
                Some(prev) if line.0 == prev.0 => return [None, None], // same line
                _ => {}
            }
        }
        // Allocate/replace a stream slot round-robin.
        self.streams[self.next_victim] = Some(line);
        self.next_victim = (self.next_victim + 1) % STREAMS;
        [None, None]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut p = Prefetcher::new(false);
        assert_eq!(p.on_access(LineId(1)), [None, None]);
        assert_eq!(p.on_access(LineId(2)), [None, None]);
        assert_eq!(p.on_access(LineId(3)), [None, None]);
    }

    #[test]
    fn sequential_stride_prefetches_two_ahead() {
        let mut p = Prefetcher::new(true);
        assert_eq!(p.on_access(LineId(10)), [None, None], "first access trains only");
        assert_eq!(p.on_access(LineId(11)), [Some(LineId(12)), Some(LineId(13))]);
        assert_eq!(p.on_access(LineId(12)), [Some(LineId(13)), Some(LineId(14))]);
    }

    #[test]
    fn random_accesses_do_not_fire() {
        let mut p = Prefetcher::new(true);
        assert_eq!(p.on_access(LineId(10)), [None, None]);
        assert_eq!(p.on_access(LineId(42)), [None, None]);
        assert_eq!(p.on_access(LineId(7)), [None, None]);
    }

    #[test]
    fn interleaved_streams_are_tracked_independently() {
        // Two alternating sequential streams (the kmeans pattern: point
        // row and accumulator) must both fire.
        let mut p = Prefetcher::new(true);
        assert_eq!(p.on_access(LineId(100)), [None, None]);
        assert_eq!(p.on_access(LineId(500)), [None, None]);
        assert_eq!(p.on_access(LineId(101))[0], Some(LineId(102)));
        assert_eq!(p.on_access(LineId(501))[0], Some(LineId(502)));
        assert_eq!(p.on_access(LineId(102))[0], Some(LineId(103)));
    }

    #[test]
    fn begin_tx_resets_training() {
        let mut p = Prefetcher::new(true);
        p.on_access(LineId(10));
        p.begin_tx();
        assert_eq!(p.on_access(LineId(11)), [None, None], "no stride across tx begin");
        assert_eq!(p.on_access(LineId(12))[0], Some(LineId(13)));
    }

    #[test]
    fn kmeans_pattern_prefetches_neighbour_cluster() {
        // A cluster spanning lines 100..102; updating it sequentially must
        // prefetch into line 102 — the neighbouring cluster's first line.
        let mut p = Prefetcher::new(true);
        let mut prefetched = Vec::new();
        for l in [100u32, 101] {
            for pf in p.on_access(LineId(l)).into_iter().flatten() {
                prefetched.push(pf);
            }
        }
        assert!(prefetched.contains(&LineId(102)));
    }
}
