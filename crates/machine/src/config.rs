//! Platform configurations — the simulator's encoding of Table 1.
//!
//! Each of the four processors is described by a [`MachineConfig`]: purely
//! declarative data (geometry, capacities, cycle costs, feature flags) that
//! the transaction engine in `htm-runtime` interprets. Ablation benchmarks
//! construct variants of these configs (e.g. a POWER8 with a larger TMCAM)
//! through [`MachineConfig`]'s public fields.

use htm_core::CostModel;

use crate::tracker::TrackerKind;

/// The four HTM systems compared by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// IBM Blue Gene/Q (16-core 1.6 GHz A2, 4-way SMT).
    BlueGeneQ,
    /// IBM zEnterprise EC12 (16-core 5.5 GHz, no SMT).
    Zec12,
    /// Intel Core i7-4770 (4-core 3.4 GHz, 2-way SMT; TSX).
    IntelCore,
    /// IBM POWER8 (6-core 4.1 GHz, 8-way SMT; pre-release as in the paper).
    Power8,
}

impl Platform {
    /// All four platforms in the paper's presentation order.
    pub const ALL: [Platform; 4] =
        [Platform::BlueGeneQ, Platform::Zec12, Platform::IntelCore, Platform::Power8];

    /// The short label used in the paper's figures (BG, z12, IC, P8).
    pub fn short_name(self) -> &'static str {
        match self {
            Platform::BlueGeneQ => "BG",
            Platform::Zec12 => "z12",
            Platform::IntelCore => "IC",
            Platform::Power8 => "P8",
        }
    }

    /// The default configuration for this platform.
    ///
    /// Blue Gene/Q defaults to long-running mode; use
    /// [`MachineConfig::blue_gene_q`] to select the mode explicitly.
    pub fn config(self) -> MachineConfig {
        match self {
            Platform::BlueGeneQ => MachineConfig::blue_gene_q(BgqMode::LongRunning),
            Platform::Zec12 => MachineConfig::zec12(),
            Platform::IntelCore => MachineConfig::intel_core(),
            Platform::Power8 => MachineConfig::power8(),
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::BlueGeneQ => write!(f, "Blue Gene/Q"),
            Platform::Zec12 => write!(f, "zEC12"),
            Platform::IntelCore => write!(f, "Intel Core i7-4770"),
            Platform::Power8 => write!(f, "POWER8"),
        }
    }
}

/// Blue Gene/Q transactional execution mode (Section 2.1).
///
/// * Short-running: only the L2 buffers transactional data — fine (8 B)
///   conflict granularity, but every transactional load pays L2 latency.
/// * Long-running: the L1 may buffer transactional data — coarser (64 B)
///   granularity, L1 invalidation at transaction begin, lazy lock
///   subscription in the system-provided retry mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BgqMode {
    /// Short-running mode.
    ShortRunning,
    /// Long-running mode (default).
    #[default]
    LongRunning,
}

/// zEC12 constrained-transaction limits (Section 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstrainedLimits {
    /// Maximum transactional footprint in bytes (paper: 256).
    pub max_bytes: u32,
    /// Maximum number of memory accesses, standing in for the 32-instruction
    /// limit.
    pub max_accesses: u32,
}

impl Default for ConstrainedLimits {
    fn default() -> ConstrainedLimits {
        ConstrainedLimits { max_bytes: 256, max_accesses: 32 }
    }
}

/// Speculation-ID pool parameters (Blue Gene/Q, Section 2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecIdConfig {
    /// Total hardware speculation IDs (paper: 128).
    pub total: u32,
    /// Cycles a thread is blocked performing/awaiting a batch reclaim when
    /// the free pool is empty.
    pub reclaim_cycles: u64,
}

impl Default for SpecIdConfig {
    fn default() -> SpecIdConfig {
        SpecIdConfig { total: 128, reclaim_cycles: 1500 }
    }
}

/// Full description of one HTM platform.
///
/// Fields are public so that ablation experiments can construct variants;
/// ordinary users obtain configs from [`Platform::config`] or the named
/// constructors.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Which processor this models.
    pub platform: Platform,
    /// Human-readable name (Table 1 column header).
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// SMT threads per core (1 = no SMT).
    pub smt: u32,
    /// Throughput gain per additional SMT sibling sharing a core: `n`
    /// co-resident threads deliver `1 + (n-1) * smt_efficiency` times one
    /// thread's throughput, so each runs `n / (1 + (n-1)*eff)` times
    /// slower. (The paper's fairness caveat: beyond the core count, a
    /// processor cannot give each thread full performance.)
    pub smt_efficiency: f64,
    /// Nominal clock frequency in GHz (reporting only).
    pub ghz: f64,
    /// Conflict-detection granularity in bytes (Table 1 row 1).
    pub granularity: u32,
    /// Capacity-tracking structure.
    pub tracker: TrackerKind,
    /// Cycle costs.
    pub cost: CostModel,
    /// Kinds of abort reasons the platform reports (Table 1 last row;
    /// 0 = none reported, i.e. Blue Gene/Q).
    pub abort_reason_kinds: u32,
    /// Whether the abort code carries the processor's persistent/transient
    /// judgement (zEC12, Intel, POWER8).
    pub reports_persistence: bool,
    /// Whether conflicts with non-transactional accesses are reported
    /// distinctly from transactional ones (POWER8).
    pub distinguishes_nontx_conflict: bool,
    /// Hardware prefetcher that can pull neighbouring lines into the
    /// transactional read set (Intel Core; Section 5.1).
    pub prefetcher: bool,
    /// Probability that any given transactional store triggers a transient
    /// implementation-restriction abort (models zEC12's undisclosed
    /// "cache-fetch-related" aborts; Section 5.1).
    pub restriction_abort_per_store: f64,
    /// Speculation-ID pool, if the platform has one (Blue Gene/Q).
    pub spec_ids: Option<SpecIdConfig>,
    /// Constrained transactions, if supported (zEC12).
    pub constrained: Option<ConstrainedLimits>,
    /// Suspend/resume instructions (POWER8).
    pub has_suspend_resume: bool,
    /// Rollback-only transactions (POWER8).
    pub has_rollback_only: bool,
    /// Hardware lock elision interface (Intel Core).
    pub has_hle: bool,
    /// Whether software abort handlers are available. Blue Gene/Q exposes
    /// only the system-provided retry mechanism (Section 3).
    pub has_abort_handlers: bool,
    /// Blue Gene/Q running mode, if applicable.
    pub bgq_mode: Option<BgqMode>,
    /// Table 1 "L1 data cache" description.
    pub l1_desc: String,
    /// Table 1 "L2 data cache" description.
    pub l2_desc: String,
}

impl MachineConfig {
    /// Blue Gene/Q in the given running mode.
    pub fn blue_gene_q(mode: BgqMode) -> MachineConfig {
        let (granularity, tx_load_extra, tbegin_extra) = match mode {
            // Short-running: 8-byte detection granularity, every tx load
            // goes to L2 (~12 extra cycles).
            BgqMode::ShortRunning => (8, 12, 0),
            // Long-running: 64-byte granularity, L1 invalidation at begin.
            BgqMode::LongRunning => (64, 1, 140),
        };
        MachineConfig {
            platform: Platform::BlueGeneQ,
            name: "Blue Gene/Q".to_string(),
            cores: 16,
            smt: 4,
            // The A2 core is a throughput design: 4-way SMT pays off well.
            smt_efficiency: 0.45,
            ghz: 1.6,
            granularity,
            // 20 MB L2 for 16 cores = 1.25 MB per core, loads + stores
            // combined (Section 2.1).
            tracker: TrackerKind::ByteBudget {
                combined_bytes: 20 * 1024 * 1024 / 16,
                line_bytes: granularity,
            },
            cost: CostModel {
                // Software register checkpointing + system calls to begin
                // and end transactions (Section 5.1).
                tbegin: 190 + tbegin_extra,
                tend: 130,
                abort: 300,
                load: 1,
                store: 1,
                tx_load_extra,
                tx_store_extra: 2,
                mem_miss: 120,
                mem_concurrency_penalty: 0.05,
                spin_poll: 6,
                lock_op: 30,
            },
            abort_reason_kinds: 0,
            reports_persistence: false,
            distinguishes_nontx_conflict: false,
            prefetcher: false,
            restriction_abort_per_store: 0.0,
            spec_ids: Some(SpecIdConfig::default()),
            constrained: None,
            has_suspend_resume: false,
            has_rollback_only: false,
            has_hle: false,
            has_abort_handlers: false,
            bgq_mode: Some(mode),
            l1_desc: "16 KB, 8-way".to_string(),
            l2_desc: "32 MB, 16-way (shared by 16 cores)".to_string(),
        }
    }

    /// IBM zEnterprise EC12.
    pub fn zec12() -> MachineConfig {
        MachineConfig {
            platform: Platform::Zec12,
            name: "zEC12".to_string(),
            cores: 16,
            smt: 1,
            smt_efficiency: 0.0, // no SMT
            ghz: 5.5,
            granularity: 256,
            // 96 KB 6-way L1 with tx-read bits; evicted read lines recorded
            // in the LRU-extension vector up to 1 MB; stores gathered in an
            // 8 KB store cache (Section 2.2).
            tracker: TrackerKind::SetAssoc {
                l1_bytes: 96 * 1024,
                ways: 6,
                line_bytes: 256,
                load_total_bytes: 1024 * 1024,
                store_total_bytes: 8 * 1024,
                store_set_assoc: false,
            },
            cost: CostModel {
                tbegin: 25,
                tend: 20,
                abort: 180,
                load: 1,
                store: 1,
                tx_load_extra: 0,
                tx_store_extra: 1,
                mem_miss: 90,
                mem_concurrency_penalty: 0.03,
                spin_poll: 5,
                // Interlocked operations are serializing and expensive on
                // z — the path-length advantage constrained transactions
                // have over the lock-free CAS dance (Section 6.1).
                lock_op: 55,
            },
            abort_reason_kinds: 14,
            reports_persistence: true,
            distinguishes_nontx_conflict: false,
            prefetcher: false,
            // The dominant abort class the paper measured on zEC12
            // ("cache-fetch-related", transient, undisclosed mechanism).
            restriction_abort_per_store: 0.004,
            spec_ids: None,
            constrained: Some(ConstrainedLimits::default()),
            has_suspend_resume: false,
            has_rollback_only: false,
            has_hle: false,
            has_abort_handlers: true,
            bgq_mode: None,
            l1_desc: "96 KB, 6-way".to_string(),
            l2_desc: "1 MB, 8-way".to_string(),
        }
    }

    /// Intel Core i7-4770 (Haswell TSX).
    pub fn intel_core() -> MachineConfig {
        MachineConfig {
            platform: Platform::IntelCore,
            name: "Intel Core i7-4770".to_string(),
            cores: 4,
            smt: 2,
            smt_efficiency: 0.28, // typical Hyper-Threading gain
            ghz: 3.4,
            granularity: 64,
            // Load capacity 4 MB via an eviction-tracking structure; store
            // capacity 22 KB within the 32 KB 8-way L1 (Section 2.3).
            tracker: TrackerKind::SetAssoc {
                l1_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                load_total_bytes: 4 * 1024 * 1024,
                store_total_bytes: 22 * 1024,
                store_set_assoc: true,
            },
            cost: CostModel {
                tbegin: 35,
                tend: 15,
                abort: 160,
                load: 1,
                store: 1,
                tx_load_extra: 0,
                tx_store_extra: 0,
                mem_miss: 110,
                // The desktop machine's concurrent-memory-access weakness
                // that capped ssca2 scaling (Section 5.1).
                mem_concurrency_penalty: 0.45,
                spin_poll: 5,
                lock_op: 20,
            },
            abort_reason_kinds: 6,
            reports_persistence: true,
            distinguishes_nontx_conflict: false,
            prefetcher: true,
            restriction_abort_per_store: 0.0,
            spec_ids: None,
            constrained: None,
            has_suspend_resume: false,
            has_rollback_only: false,
            has_hle: true,
            has_abort_handlers: true,
            bgq_mode: None,
            l1_desc: "32 KB, 8-way".to_string(),
            l2_desc: "256 KB".to_string(),
        }
    }

    /// IBM POWER8 (pre-release, as measured by the paper).
    pub fn power8() -> MachineConfig {
        MachineConfig {
            platform: Platform::Power8,
            name: "POWER8".to_string(),
            cores: 6,
            smt: 8,
            smt_efficiency: 0.35,
            ghz: 4.1,
            granularity: 128,
            // 64-entry L2 TMCAM of 128-byte lines = 8 KB combined load+store
            // capacity (Section 2.4).
            tracker: TrackerKind::Tmcam { entries: 64, line_bytes: 128 },
            cost: CostModel {
                tbegin: 55,
                tend: 35,
                abort: 220,
                load: 1,
                store: 1,
                tx_load_extra: 1,
                tx_store_extra: 1,
                mem_miss: 100,
                mem_concurrency_penalty: 0.05,
                spin_poll: 5,
                lock_op: 25,
            },
            abort_reason_kinds: 11,
            reports_persistence: true,
            distinguishes_nontx_conflict: true,
            prefetcher: false,
            restriction_abort_per_store: 0.0,
            spec_ids: None,
            constrained: None,
            has_suspend_resume: true,
            has_rollback_only: true,
            has_hle: false,
            has_abort_handlers: true,
            bgq_mode: None,
            l1_desc: "64 KB".to_string(),
            l2_desc: "512 KB, 8-way".to_string(),
        }
    }

    /// Total hardware threads (cores × SMT).
    pub fn hw_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Core a given worker thread is placed on: threads fill cores
    /// round-robin, so each thread has a dedicated core while
    /// `threads <= cores` (the paper's fairness condition, Section 5).
    pub fn core_of(&self, thread: u32) -> u32 {
        thread % self.cores
    }

    /// Transactional-load capacity in bytes (Table 1 row 2).
    pub fn load_capacity_bytes(&self) -> u64 {
        self.tracker.load_capacity_bytes()
    }

    /// Transactional-store capacity in bytes (Table 1 row 3).
    pub fn store_capacity_bytes(&self) -> u64 {
        self.tracker.store_capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities() {
        // The headline Table 1 numbers.
        assert_eq!(MachineConfig::zec12().load_capacity_bytes(), 1024 * 1024);
        assert_eq!(MachineConfig::zec12().store_capacity_bytes(), 8 * 1024);
        assert_eq!(MachineConfig::intel_core().load_capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(MachineConfig::intel_core().store_capacity_bytes(), 22 * 1024);
        assert_eq!(MachineConfig::power8().load_capacity_bytes(), 8 * 1024);
        assert_eq!(MachineConfig::power8().store_capacity_bytes(), 8 * 1024);
        let bgq = MachineConfig::blue_gene_q(BgqMode::LongRunning);
        assert_eq!(bgq.load_capacity_bytes(), 20 * 1024 * 1024 / 16);
    }

    #[test]
    fn table1_granularities() {
        assert_eq!(MachineConfig::zec12().granularity, 256);
        assert_eq!(MachineConfig::intel_core().granularity, 64);
        assert_eq!(MachineConfig::power8().granularity, 128);
        assert_eq!(MachineConfig::blue_gene_q(BgqMode::ShortRunning).granularity, 8);
        assert_eq!(MachineConfig::blue_gene_q(BgqMode::LongRunning).granularity, 64);
    }

    #[test]
    fn table1_topology() {
        for (p, cores, smt) in [
            (Platform::BlueGeneQ, 16, 4),
            (Platform::Zec12, 16, 1),
            (Platform::IntelCore, 4, 2),
            (Platform::Power8, 6, 8),
        ] {
            let c = p.config();
            assert_eq!((c.cores, c.smt), (cores, smt), "{p}");
        }
    }

    #[test]
    fn feature_flags_match_paper() {
        assert!(MachineConfig::zec12().constrained.is_some());
        assert!(MachineConfig::intel_core().has_hle);
        assert!(MachineConfig::power8().has_suspend_resume);
        assert!(MachineConfig::power8().has_rollback_only);
        assert!(MachineConfig::blue_gene_q(BgqMode::LongRunning).spec_ids.is_some());
        assert!(!MachineConfig::blue_gene_q(BgqMode::LongRunning).has_abort_handlers);
        assert!(MachineConfig::intel_core().prefetcher);
        assert!(!MachineConfig::power8().prefetcher);
    }

    #[test]
    fn abort_reason_kinds_match_table1() {
        assert_eq!(MachineConfig::zec12().abort_reason_kinds, 14);
        assert_eq!(MachineConfig::intel_core().abort_reason_kinds, 6);
        assert_eq!(MachineConfig::power8().abort_reason_kinds, 11);
        assert_eq!(Platform::BlueGeneQ.config().abort_reason_kinds, 0);
    }

    #[test]
    fn core_placement_round_robin() {
        let c = MachineConfig::intel_core();
        assert_eq!(c.core_of(0), 0);
        assert_eq!(c.core_of(3), 3);
        assert_eq!(c.core_of(4), 0, "5th thread shares core 0 (SMT)");
        assert_eq!(c.hw_threads(), 8);
    }

    #[test]
    fn short_names() {
        assert_eq!(Platform::BlueGeneQ.short_name(), "BG");
        assert_eq!(Platform::Zec12.short_name(), "z12");
        assert_eq!(Platform::IntelCore.short_name(), "IC");
        assert_eq!(Platform::Power8.short_name(), "P8");
    }
}
