//! # htm-analyze — post-run analysis passes
//!
//! The simulator's runtime layer answers *what happened* (commit counts,
//! abort ratios, a [`RaceReport`](htm_core::RaceReport) when
//! `SimConfig::sanitize` is on). This crate answers *why*, and turns the
//! answers into actionable lint findings:
//!
//! * [`blame`] — the abort-blame pass: folds the attributed
//!   [`ConflictEvent`](htm_core::ConflictEvent)s of a sanitized run into a
//!   per-line / per-thread-pair [`ConflictMatrix`], and cross-references the
//!   sanitizer's captured segments to detect **false sharing** (threads
//!   conflicting on a line whose word footprints are disjoint),
//! * [`capacity`] — static capacity prediction: replays traced per-block
//!   line footprints against each platform's
//!   [`TrackerKind`](htm_machine::TrackerKind) model (BG/Q L2 directory,
//!   zEC12 LRU-extension vector, Intel L1 eviction, POWER8 TMCAM) to
//!   predict which blocks *cannot* commit in hardware,
//! * [`lint`] — the rule engine behind the `htm-lint` CLI: evaluates the
//!   `race`, `false-sharing`, `capacity-overflow`, `hot-line` and
//!   `excessive-retry` rules over one benchmark cell and gates CI on a
//!   configurable rule subset,
//! * [`json`] — a dependency-free JSON value type (writer + parser) for
//!   machine-readable lint reports,
//! * [`adapt`] — the adaptive-controller feedback export: per-thread tier
//!   switches, backoff, spills and rescues as a JSON report for offline
//!   tuning of the `--fallback adaptive` ladder.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod blame;
pub mod capacity;
pub mod json;
pub mod lint;

pub use adapt::{AdaptFeedback, ThreadFeedback};
pub use blame::{detect_false_sharing, hot_keys, ConflictMatrix, FalseSharing, HotKey};
pub use capacity::{predict_capacity, CapacityCell};
pub use json::Json;
pub use lint::{lint_cell, Gate, Rule, Severity, Thresholds, Violation};
