//! A dependency-free JSON value: writer and recursive-descent parser.
//!
//! The lint CLI must emit machine-readable reports and CI must be able to
//! read them back, but the build environment has no crates.io access, so
//! this is a small hand-rolled implementation of RFC 8259 covering the
//! subset the reports use (which is all of JSON except `\u` surrogate
//! pairs being validated for pairing — lone surrogates round-trip as the
//! replacement character).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document (complete input: trailing garbage is an
    /// error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integral values print without the ".0" so counts look
                // like counts; {:?} is f64's shortest round-trip form.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Nesting bound for `[`/`{`: parsing recurses, so an adversarial or
/// corrupt document (`[[[[…`) must become a parse error well before it can
/// exhaust the thread's stack. Real documents here (cache entries, wire
/// messages, lint reports) nest a handful of levels at most.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    char::from_u32(0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00))
                                } else {
                                    // A high surrogate followed by a
                                    // non-low-surrogate escape: both halves
                                    // are unpaired (`lo - 0xdc00` would
                                    // underflow). Replace the broken pair.
                                    out.push(char::REPLACEMENT_CHARACTER);
                                    char::from_u32(lo)
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or(char::REPLACEMENT_CHARACTER));
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str so boundaries are valid, but a malformed buffer
                    // must degrade to a parse error, not a panic.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_canonical_forms() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("kmeans-high")),
            ("count".into(), Json::Num(3.0)),
            ("ratio".into(), Json::Num(0.5)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"kmeans-high","count":3,"ratio":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#" { "a" : [ 1 , -2.5e1 , { } , [ ] ] , "b" : false } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-25.0));
        assert_eq!(v.get("b"), Some(&Json::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // One past the bound fails cleanly…
        let deep = "[".repeat(MAX_DEPTH as usize + 1);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
        // …as does a pathological wire-sized document.
        let hostile = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        assert!(Json::parse(&hostile).is_err());
        // Mixed nesting counts both container kinds.
        let mixed = "{\"k\":[".repeat(80) + "0";
        assert!(Json::parse(&mixed).unwrap_err().contains("nesting"));
        // At the bound, parsing still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH as usize), "]".repeat(MAX_DEPTH as usize));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn unpaired_surrogate_escapes_degrade_to_replacement() {
        // Lone high surrogate at end of string.
        assert_eq!(Json::parse("\"\\ud800\"").unwrap(), Json::str("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape: used to
        // underflow in the combining arithmetic; both halves must land as
        // replacement + the literal scalar.
        assert_eq!(Json::parse("\"\\ud800\\u0041\"").unwrap(), Json::str("\u{fffd}A"));
        // Lone low surrogate.
        assert_eq!(Json::parse("\"\\udc00x\"").unwrap(), Json::str("\u{fffd}x"));
        // A valid pair still decodes.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("\u{1f600}"));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{1:2}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn non_object_lookups_are_none() {
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Num(1.0).as_str(), None);
        assert_eq!(Json::str("s").as_f64(), None);
        assert_eq!(Json::Bool(true).as_arr(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds an arbitrary nested document from a fuzz byte stream:
    /// every byte sequence decodes to *some* valid `Json`, so random
    /// vectors explore strings with escapes, fractional numbers, and
    /// nested arrays/objects without a regex strategy.
    fn build(bytes: &mut std::slice::Iter<'_, u8>, depth: u32) -> Json {
        const CHARS: [char; 12] =
            ['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '/', '\u{1}', 'é', '😀'];
        let b = *bytes.next().unwrap_or(&0);
        match b % 6 {
            0 => Json::Null,
            1 => Json::Bool(b & 8 != 0),
            2 => {
                let hi = *bytes.next().unwrap_or(&0) as f64 - 128.0;
                // Quarters are exact in binary, so equality survives the
                // text round-trip.
                let frac = (*bytes.next().unwrap_or(&0) % 4) as f64 / 4.0;
                Json::Num(hi * 1000.0 + frac)
            }
            3 => {
                let n = (b / 6) % 8;
                let s: String = (0..n)
                    .map(|_| CHARS[(*bytes.next().unwrap_or(&0) as usize) % CHARS.len()])
                    .collect();
                Json::Str(s)
            }
            4 if depth > 0 => {
                let n = (b / 6) % 4;
                Json::Arr((0..n).map(|_| build(bytes, depth - 1)).collect())
            }
            5 if depth > 0 => {
                let n = (b / 6) % 4;
                Json::Obj((0..n).map(|i| (format!("k{i}"), build(bytes, depth - 1))).collect())
            }
            _ => Json::Null,
        }
    }

    proptest! {
        #[test]
        fn round_trips(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            let v = build(&mut bytes.iter(), 3);
            let text = v.to_string();
            let back = Json::parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}: {text}")))?;
            prop_assert!(back == v, "{} reparsed as {}", v, back);
        }
    }
}
