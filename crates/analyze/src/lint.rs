//! The `htm-lint` rule engine: evaluates workload-health rules over one
//! sanitized benchmark cell and gates CI on a configurable rule subset.
//!
//! Rules:
//!
//! * `race` — the happens-before sanitizer found unsynchronized accesses
//!   (or its capture truncated, which may hide them): always an error,
//! * `false-sharing` — conflict aborts on a line whose atomic blocks touch
//!   disjoint words ([`detect_false_sharing`]),
//! * `capacity-overflow` — the static capacity pass predicts that (almost)
//!   no block can commit in hardware on this platform,
//! * `hot-line` — one conflict line accounts for most attributed aborts,
//! * `excessive-retry` — the run burned far more aborted blocks than
//!   committed ones,
//! * `opacity` — the model checker found a schedule on which an aborted
//!   attempt observed no consistent snapshot,
//! * `model-check` — the model checker found a violating schedule of any
//!   other class (serializability, lost update, deadlock, starvation).

use std::fmt;

use crate::blame::{detect_false_sharing, ConflictMatrix};
use crate::capacity::CapacityCell;
use crate::json::Json;

/// How bad a violation is. Ordering: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not worth acting on.
    Info,
    /// The workload likely leaves performance on the table.
    Warning,
    /// The workload is incorrect or cannot profit from HTM at all.
    Error,
}

impl Severity {
    fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Happens-before data race (or truncated race capture).
    Race,
    /// Conflicts caused by the detection granularity, not the data.
    FalseSharing,
    /// Statically predicted capacity overflow on this platform.
    CapacityOverflow,
    /// One line dominates the conflict-abort profile.
    HotLine,
    /// Aborted blocks dwarf committed ones.
    ExcessiveRetry,
    /// A model-checked schedule produced a non-opaque aborted attempt.
    Opacity,
    /// A model-checked schedule violated any other checked property.
    ModelCheck,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::Race,
        Rule::FalseSharing,
        Rule::CapacityOverflow,
        Rule::HotLine,
        Rule::ExcessiveRetry,
        Rule::Opacity,
        Rule::ModelCheck,
    ];

    /// The rule's kebab-case name (CLI and JSON identifier).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Race => "race",
            Rule::FalseSharing => "false-sharing",
            Rule::CapacityOverflow => "capacity-overflow",
            Rule::HotLine => "hot-line",
            Rule::ExcessiveRetry => "excessive-retry",
            Rule::Opacity => "opacity",
            Rule::ModelCheck => "model-check",
        }
    }

    /// Parses a kebab-case rule name.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation in one (benchmark × platform) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Severity of this instance.
    pub severity: Severity,
    /// Benchmark label (e.g. `"kmeans-high"`).
    pub bench: String,
    /// Platform label (e.g. `"zEC12"`).
    pub platform: String,
    /// The measured quantity the rule triggered on (count, fraction, or
    /// ratio, per rule).
    pub measure: f64,
    /// Human-readable explanation.
    pub detail: String,
}

impl Violation {
    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".into(), Json::str(self.rule.name())),
            ("severity".into(), Json::str(self.severity.name())),
            ("bench".into(), Json::str(&*self.bench)),
            ("platform".into(), Json::str(&*self.platform)),
            ("measure".into(), Json::Num(self.measure)),
            ("detail".into(), Json::str(&*self.detail)),
        ])
    }

    /// Deserializes from [`Violation::to_json`]'s shape.
    pub fn from_json(v: &Json) -> Result<Violation, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let text = |k: &str| {
            field(k)?.as_str().map(str::to_owned).ok_or_else(|| format!("field {k:?} not a string"))
        };
        Ok(Violation {
            rule: Rule::parse(&text("rule")?).ok_or("unknown rule")?,
            severity: Severity::parse(&text("severity")?).ok_or("unknown severity")?,
            bench: text("bench")?,
            platform: text("platform")?,
            measure: field("measure")?.as_f64().ok_or("measure not a number")?,
            detail: text("detail")?,
        })
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {} on {}: {}",
            self.severity, self.rule, self.bench, self.platform, self.detail
        )
    }
}

/// Serializes a full lint report (all cells' violations).
pub fn report_to_json(violations: &[Violation]) -> Json {
    Json::Obj(vec![(
        "violations".into(),
        Json::Arr(violations.iter().map(Violation::to_json).collect()),
    )])
}

/// Parses a report produced by [`report_to_json`].
pub fn report_from_json(text: &str) -> Result<Vec<Violation>, String> {
    let doc = Json::parse(text)?;
    doc.get("violations")
        .and_then(Json::as_arr)
        .ok_or("missing \"violations\" array")?
        .iter()
        .map(Violation::from_json)
        .collect()
}

/// Tunable rule thresholds.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// `false-sharing`: minimum conflict aborts on a line before its word
    /// footprints are examined.
    pub false_sharing_min_conflicts: u64,
    /// `capacity-overflow`: predicted-overflow block fraction that triggers
    /// a warning.
    pub capacity_warn_fraction: f64,
    /// `capacity-overflow`: fraction that escalates to an error (HTM is
    /// useless for the workload on this platform).
    pub capacity_error_fraction: f64,
    /// `hot-line`: minimum attributed conflicts before concentration is
    /// judged.
    pub hot_line_min_conflicts: u64,
    /// `hot-line`: share of all conflicts on the hottest line that
    /// triggers.
    pub hot_line_share: f64,
    /// `excessive-retry`: aborted-to-committed block ratio that triggers.
    pub excessive_retry_ratio: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            false_sharing_min_conflicts: 16,
            capacity_warn_fraction: 0.5,
            capacity_error_fraction: 0.95,
            hot_line_min_conflicts: 256,
            hot_line_share: 0.75,
            excessive_retry_ratio: 4.0,
        }
    }
}

/// Lints one sanitized (benchmark × platform) cell.
///
/// `word_blocks` are per-block word-granularity (load, store) footprints
/// from a sequential trace (for the false-sharing check — pass `&[]` when
/// no trace is available and the rule is skipped); `words_per_line` is the
/// platform's conflict-detection granularity in words; `capacity` is the
/// static prediction for this cell, or `None` when no footprint trace is
/// available.
pub fn lint_cell(
    bench: &str,
    platform: &str,
    stats: &htm_runtime::RunStats,
    capacity: Option<&CapacityCell>,
    word_blocks: &[(Vec<u32>, Vec<u32>)],
    words_per_line: u32,
    th: &Thresholds,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mk = |rule: Rule, severity: Severity, measure: f64, detail: String| Violation {
        rule,
        severity,
        bench: bench.to_owned(),
        platform: platform.to_owned(),
        measure,
        detail,
    };

    let race = stats.race.as_ref();
    if let Some(report) = race {
        if !report.ok() {
            let detail = if report.races.is_empty() {
                "race capture truncated; races may be hidden".to_owned()
            } else {
                format!("{} distinct race(s); first: {}", report.races.len(), report.races[0])
            };
            out.push(mk(Rule::Race, Severity::Error, report.races.len() as f64, detail));
        }
    }

    let matrix = ConflictMatrix::from_stats(stats);
    for f in
        detect_false_sharing(&matrix, word_blocks, words_per_line, th.false_sharing_min_conflicts)
    {
        out.push(mk(Rule::FalseSharing, Severity::Warning, f.conflicts as f64, f.to_string()));
    }

    if let Some(cap) = capacity {
        let frac = cap.fraction();
        if frac >= th.capacity_warn_fraction {
            let severity = if frac >= th.capacity_error_fraction {
                Severity::Error
            } else {
                Severity::Warning
            };
            out.push(mk(Rule::CapacityOverflow, severity, frac, format!("{cap}")));
        }
    }

    if matrix.total() >= th.hot_line_min_conflicts {
        if let Some((line, n)) = matrix.hottest() {
            let share = n as f64 / matrix.total() as f64;
            if share >= th.hot_line_share {
                out.push(mk(
                    Rule::HotLine,
                    Severity::Info,
                    share,
                    format!(
                        "{line:?} accounts for {n} of {} attributed conflict abort(s)",
                        matrix.total()
                    ),
                ));
            }
        }
    }

    let committed = stats.committed_blocks();
    if committed > 0 {
        let ratio = stats.total_aborts() as f64 / committed as f64;
        if ratio >= th.excessive_retry_ratio {
            out.push(mk(
                Rule::ExcessiveRetry,
                Severity::Warning,
                ratio,
                format!(
                    "{} abort(s) for {committed} committed block(s) ({ratio:.1}x)",
                    stats.total_aborts()
                ),
            ));
        }
    }

    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));
    out
}

/// Packages one model-checker counterexample as a lint violation.
///
/// `opacity`-class counterexamples map to [`Rule::Opacity`]; every other
/// class maps to [`Rule::ModelCheck`]. Both are always errors: a violating
/// schedule is an engine-correctness finding, not a tuning matter. `bench`
/// names the kernel, `class_key` the model checker's violation class, and
/// `violating` the number of violating schedules (the measure).
pub fn model_violation(
    bench: &str,
    platform: &str,
    class_key: &str,
    detail: &str,
    violating: u64,
) -> Violation {
    let rule = if class_key == "opacity" { Rule::Opacity } else { Rule::ModelCheck };
    Violation {
        rule,
        severity: Severity::Error,
        bench: bench.to_owned(),
        platform: platform.to_owned(),
        measure: violating as f64,
        detail: format!("[{class_key}] {detail}"),
    }
}

/// A CI gate: the set of rules whose violations fail the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    rules: Vec<Rule>,
}

impl Gate {
    /// Parses a comma-separated rule list (e.g.
    /// `"race,capacity-overflow"`). An empty string gates on nothing.
    pub fn parse(s: &str) -> Result<Gate, String> {
        let mut rules = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let rule = Rule::parse(part).ok_or_else(|| format!("unknown lint rule {part:?}"))?;
            if !rules.contains(&rule) {
                rules.push(rule);
            }
        }
        Ok(Gate { rules })
    }

    /// A gate on every rule.
    pub fn all() -> Gate {
        Gate { rules: Rule::ALL.to_vec() }
    }

    /// The gated rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The violations that fail this gate.
    pub fn failing<'a>(&self, violations: &'a [Violation]) -> Vec<&'a Violation> {
        violations.iter().filter(|v| self.rules.contains(&v.rule)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule) -> Violation {
        Violation {
            rule,
            severity: Severity::Warning,
            bench: "kmeans-high".into(),
            platform: "zEC12".into(),
            measure: 0.5,
            detail: "test \"detail\"".into(),
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.name()), Some(r), "{r}");
        }
        assert_eq!(Rule::parse("nonsense"), None);
    }

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("x"), None);
    }

    #[test]
    fn violation_json_round_trips() {
        let vs: Vec<Violation> = Rule::ALL.map(v).to_vec();
        let text = report_to_json(&vs).to_string();
        let back = report_from_json(&text).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn report_parse_rejects_wrong_shapes() {
        assert!(report_from_json("{}").is_err());
        assert!(report_from_json(r#"{"violations":[{}]}"#).is_err());
        assert!(report_from_json(r#"{"violations":[{"rule":"not-a-rule"}]}"#).is_err());
        assert!(report_from_json("[1]").is_err());
    }

    #[test]
    fn gate_parses_and_filters() {
        let g = Gate::parse("race, capacity-overflow,race").unwrap();
        assert_eq!(g.rules(), &[Rule::Race, Rule::CapacityOverflow]);
        let vs = vec![v(Rule::Race), v(Rule::HotLine)];
        let failing = g.failing(&vs);
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].rule, Rule::Race);
        assert!(Gate::parse("").unwrap().rules().is_empty());
        assert!(Gate::parse("bogus").is_err());
        assert_eq!(Gate::all().rules().len(), Rule::ALL.len());
    }

    #[test]
    fn model_violations_split_on_the_opacity_class() {
        let o = model_violation("snapshot", "IntelCore", "opacity", "torn read", 3);
        assert_eq!(o.rule, Rule::Opacity);
        assert_eq!(o.severity, Severity::Error);
        assert_eq!(o.measure, 3.0);
        let m = model_violation("counter", "IntelCore", "certify", "stale read", 4);
        assert_eq!(m.rule, Rule::ModelCheck);
        assert!(m.detail.contains("[certify]"), "{}", m.detail);
        // Both new rules ride the standard JSON and gate plumbing.
        let text = report_to_json(&[o.clone(), m]).to_string();
        let back = report_from_json(&text).unwrap();
        assert_eq!(back[0], o);
        let gate = Gate::parse("opacity,model-check").unwrap();
        assert_eq!(gate.failing(&back).len(), 2);
    }

    #[test]
    fn violation_displays_its_cell() {
        let s = v(Rule::FalseSharing).to_string();
        assert!(s.contains("false-sharing"), "{s}");
        assert!(s.contains("kmeans-high"), "{s}");
        assert!(s.contains("warning"), "{s}");
    }
}
