//! Static capacity prediction: replay traced per-block line footprints
//! against a platform's capacity-tracking model.
//!
//! The paper measured capacity aborts by running each benchmark on real
//! hardware; here we *predict* them from a sequential footprint trace
//! ([`SeqTracer::line_sets`](htm_runtime::SeqTracer::line_sets)) and each
//! machine's documented limits ([`TrackerKind::predict_abort`]): Blue
//! Gene/Q's 20 MB L2 byte budget, zEC12's LRU-extension vector over the
//! 96 KB L1, Intel's L1 eviction with set-associativity, POWER8's 64-entry
//! TMCAM. Every tracker rule is monotone in the footprint, so "this block
//! cannot commit in hardware on platform X" is a sound static verdict.

use std::fmt;

use htm_core::{AbortCause, LineId};
use htm_machine::TrackerKind;

/// Predicted capacity behaviour of one (benchmark × platform) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapacityCell {
    /// Traced atomic blocks examined.
    pub blocks: u64,
    /// Blocks predicted to overflow the platform's tracking structure.
    pub predicted: u64,
    /// Predicted overflows blamed on the load footprint.
    pub read_caused: u64,
    /// Predicted overflows blamed on the store footprint.
    pub write_caused: u64,
}

impl CapacityCell {
    /// Fraction of blocks that cannot commit in hardware (0 when no block
    /// was traced).
    pub fn fraction(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.predicted as f64 / self.blocks as f64
        }
    }
}

impl fmt::Display for CapacityCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} block(s) predicted to overflow ({} read-caused, {} write-caused)",
            self.predicted, self.blocks, self.read_caused, self.write_caused
        )
    }
}

/// Predicts capacity aborts for every traced block.
///
/// `blocks` are per-block (load-line, store-line) ID sets at the tracker's
/// own line granularity (trace with granularity
/// [`TrackerKind::line_bytes`]); `share` is the SMT share of the tracking
/// structure (1 = thread owns it). `subscription_line` models the
/// global-lock subscription read the runtime adds to every hardware
/// transaction: that line joins each block's load set unless already
/// present.
pub fn predict_capacity(
    kind: TrackerKind,
    share: u32,
    blocks: &[(Vec<u32>, Vec<u32>)],
    subscription_line: Option<u32>,
) -> CapacityCell {
    let mut cell = CapacityCell { blocks: blocks.len() as u64, ..CapacityCell::default() };
    for (loads, stores) in blocks {
        let mut load_lines: Vec<LineId> = loads.iter().map(|&l| LineId(l)).collect();
        if let Some(sub) = subscription_line {
            if !loads.contains(&sub) {
                load_lines.push(LineId(sub));
            }
        }
        let store_lines: Vec<LineId> = stores.iter().map(|&l| LineId(l)).collect();
        match kind.predict_abort(share, &load_lines, &store_lines) {
            Some(AbortCause::CapacityRead) => {
                cell.predicted += 1;
                cell.read_caused += 1;
            }
            Some(_) => {
                cell.predicted += 1;
                cell.write_caused += 1;
            }
            None => {}
        }
    }
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmcam(entries: u32) -> TrackerKind {
        TrackerKind::Tmcam { entries, line_bytes: 128 }
    }

    #[test]
    fn small_blocks_fit_large_blocks_overflow() {
        let blocks = vec![
            ((0..4u32).collect(), vec![100, 101]), // 6 lines: fits in 8
            ((0..20u32).collect(), vec![]),        // 20 load lines: overflows
        ];
        let cell = predict_capacity(tmcam(8), 1, &blocks, None);
        assert_eq!(cell.blocks, 2);
        assert_eq!(cell.predicted, 1);
        assert_eq!(cell.read_caused, 1);
        assert_eq!(cell.write_caused, 0);
        assert!((cell.fraction() - 0.5).abs() < 1e-12);
        assert!(cell.to_string().contains("1/2"));
    }

    #[test]
    fn subscription_line_tips_a_full_block_over() {
        // Exactly at the 8-entry bound; the lock subscription adds a 9th.
        let blocks = vec![((0..8u32).collect(), vec![])];
        assert_eq!(predict_capacity(tmcam(8), 1, &blocks, None).predicted, 0);
        assert_eq!(predict_capacity(tmcam(8), 1, &blocks, Some(u32::MAX)).predicted, 1);
        // Already-subscribed line is not double-counted.
        assert_eq!(predict_capacity(tmcam(8), 1, &blocks, Some(3)).predicted, 0);
    }

    #[test]
    fn smt_share_shrinks_the_budget() {
        let blocks = vec![((0..8u32).collect(), vec![])];
        assert_eq!(predict_capacity(tmcam(16), 1, &blocks, None).predicted, 0);
        assert_eq!(predict_capacity(tmcam(16), 4, &blocks, None).predicted, 1);
    }

    #[test]
    fn union_overflow_is_write_blamed() {
        // 5 loads + 5 stores overflow an 8-entry union bound, but the loads
        // alone fit: blame falls on the store side.
        let blocks = vec![((0..5u32).collect(), (10..15u32).collect())];
        let cell = predict_capacity(tmcam(8), 1, &blocks, None);
        assert_eq!(cell.predicted, 1);
        assert_eq!(cell.write_caused, 1);
    }

    #[test]
    fn empty_trace_predicts_nothing() {
        let cell = predict_capacity(tmcam(8), 1, &[], None);
        assert_eq!(cell.blocks, 0);
        assert_eq!(cell.fraction(), 0.0);
    }
}
