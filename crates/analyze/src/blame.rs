//! Abort-blame analysis: who aborted whom, on which line, how often — and
//! which of those lines are victims of false sharing.
//!
//! Input is the attributed conflict stream a sanitized run records
//! ([`ConflictEvent`]: victim thread, aggressor thread when known, conflict
//! line, cause). The matrix answers the paper's practical tuning questions
//! — is contention concentrated on one line? symmetric between threads? —
//! and the false-sharing pass tells *spurious* contention (disjoint word
//! footprints sharing a conflict-detection line) from real data conflicts.

use std::collections::BTreeMap;
use std::fmt;

use htm_core::{ConflictEvent, LineId, WordAddr};

/// Per-line / per-thread-pair conflict counts for one run.
#[derive(Clone, Debug, Default)]
pub struct ConflictMatrix {
    pairs: BTreeMap<(u32, Option<u32>), u64>,
    lines: BTreeMap<LineId, u64>,
    total: u64,
}

impl ConflictMatrix {
    /// Folds a stream of attributed conflicts into a matrix.
    pub fn from_events<I: IntoIterator<Item = ConflictEvent>>(events: I) -> ConflictMatrix {
        let mut m = ConflictMatrix::default();
        for e in events {
            *m.pairs.entry((e.victim, e.aggressor)).or_insert(0) += 1;
            *m.lines.entry(e.line).or_insert(0) += 1;
            m.total += 1;
        }
        m
    }

    /// Builds the matrix from a sanitized run's statistics.
    pub fn from_stats(stats: &htm_runtime::RunStats) -> ConflictMatrix {
        ConflictMatrix::from_events(stats.conflicts())
    }

    /// Total attributed conflict aborts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// How often `aggressor` doomed `victim` (`None` = a non-transactional
    /// access or an unidentified aggressor).
    pub fn pair(&self, victim: u32, aggressor: Option<u32>) -> u64 {
        self.pairs.get(&(victim, aggressor)).copied().unwrap_or(0)
    }

    /// All (victim, aggressor) pairs with their counts, victim-ordered.
    pub fn pairs(&self) -> impl Iterator<Item = ((u32, Option<u32>), u64)> + '_ {
        self.pairs.iter().map(|(&k, &v)| (k, v))
    }

    /// Conflict aborts attributed to `line`.
    pub fn line(&self, line: LineId) -> u64 {
        self.lines.get(&line).copied().unwrap_or(0)
    }

    /// All conflict lines sorted hottest-first (ties broken by line ID, so
    /// the order is deterministic).
    pub fn hot_lines(&self) -> Vec<(LineId, u64)> {
        let mut v: Vec<(LineId, u64)> = self.lines.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The hottest conflict line, if any conflict was attributed.
    pub fn hottest(&self) -> Option<(LineId, u64)> {
        self.hot_lines().into_iter().next()
    }
}

/// A hot application key behind conflict aborts: blame resolved from
/// conflict-detection lines back to the keys stored on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotKey {
    /// The application key (e.g. a KV-store key).
    pub key: u64,
    /// The conflict line the key's storage occupies.
    pub line: LineId,
    /// Conflict aborts attributed to that line.
    pub conflicts: u64,
}

impl fmt::Display for HotKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key {} on {:?}: {} conflict abort(s)", self.key, self.line, self.conflicts)
    }
}

/// Resolves the matrix's hot lines to application keys: the service-traffic
/// answer to "which keys are behind the p99 collapse".
///
/// `key_lines` maps each application key to the conflict line holding its
/// storage (workloads snapshot this after setup, e.g. via
/// `TmHashTable::value_addr`). A line shared by several keys blames all of
/// them with the line's full count — the conflict hardware cannot tell them
/// apart either. Keys on cold lines are omitted; the result is sorted
/// hottest-first (ties broken by key, so the order is deterministic).
pub fn hot_keys(matrix: &ConflictMatrix, key_lines: &BTreeMap<u64, LineId>) -> Vec<HotKey> {
    let mut v: Vec<HotKey> = key_lines
        .iter()
        .filter_map(|(&key, &line)| {
            let conflicts = matrix.line(line);
            (conflicts > 0).then_some(HotKey { key, line, conflicts })
        })
        .collect();
    v.sort_by(|a, b| b.conflicts.cmp(&a.conflicts).then(a.key.cmp(&b.key)));
    v
}

impl fmt::Display for ConflictMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} attributed conflict abort(s)", self.total)?;
        for ((victim, aggressor), n) in &self.pairs {
            match aggressor {
                Some(a) => writeln!(f, "  thread {a} doomed thread {victim}: {n}")?,
                None => writeln!(f, "  non-tx access doomed thread {victim}: {n}")?,
            }
        }
        for (line, n) in self.hot_lines() {
            writeln!(f, "  {line:?}: {n}")?;
        }
        Ok(())
    }
}

/// A conflict line whose transactions touch disjoint words: the contention
/// is an artifact of the conflict-detection granularity, not of the data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FalseSharing {
    /// The falsely shared conflict-detection line.
    pub line: LineId,
    /// Conflict aborts attributed to the line.
    pub conflicts: u64,
    /// Distinct words on the line that were accessed, sorted.
    pub words: Vec<WordAddr>,
    /// Distinct per-block word footprints observed on the line.
    pub footprints: usize,
}

impl fmt::Display for FalseSharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "false sharing on {:?}: {} conflict(s), {} disjoint footprint(s) over {} word(s)",
            self.line,
            self.conflicts,
            self.footprints,
            self.words.len()
        )
    }
}

/// Finds false sharing: conflict lines (≥ `min_conflicts` attributed
/// aborts) where two atomic blocks have **disjoint** word footprints with
/// at least one writer — blocks that could never conflict at word
/// granularity, yet abort each other at line granularity.
///
/// `blocks` are per-block *word*-granularity (load, store) footprints
/// (trace at granularity 8 with
/// [`SeqTracer::line_sets`](htm_runtime::SeqTracer::line_sets), where a
/// "line" ID is the word address); `words_per_line` is the platform's
/// conflict-detection granularity in words. Per-block resolution matters:
/// over a whole run every thread may touch every word of a hot line, but a
/// single transaction touches only its own object — block footprints are
/// what the conflict hardware actually compares.
pub fn detect_false_sharing(
    matrix: &ConflictMatrix,
    blocks: &[(Vec<u32>, Vec<u32>)],
    words_per_line: u32,
    min_conflicts: u64,
) -> Vec<FalseSharing> {
    let wpl = words_per_line.max(1);
    let hot: Vec<(LineId, u64)> =
        matrix.hot_lines().into_iter().filter(|&(_, c)| c >= min_conflicts).collect();

    let mut findings = Vec::new();
    for (line, conflicts) in hot {
        // Distinct per-block footprints on this line (identical footprints
        // collapse, so kmeans' 512 updates of 4 clusters become 4 entries).
        let mut distinct: Vec<(Vec<u32>, bool)> = Vec::new();
        for (loads, stores) in blocks {
            let mut words: Vec<u32> =
                loads.iter().chain(stores).filter(|&&w| w / wpl == line.0).copied().collect();
            if words.is_empty() {
                continue;
            }
            words.sort_unstable();
            words.dedup();
            let wrote = stores.iter().any(|&w| w / wpl == line.0);
            match distinct.iter_mut().find(|(f, _)| *f == words) {
                Some((_, w)) => *w |= wrote,
                None => distinct.push((words, wrote)),
            }
        }
        let disjoint_write_pair = distinct.iter().enumerate().any(|(i, a)| {
            distinct[i + 1..].iter().any(|b| (a.1 || b.1) && a.0.iter().all(|w| !b.0.contains(w)))
        });
        if !disjoint_write_pair {
            continue;
        }
        let mut words: Vec<WordAddr> =
            distinct.iter().flat_map(|(f, _)| f.iter().map(|&w| WordAddr(w))).collect();
        words.sort_unstable();
        words.dedup();
        findings.push(FalseSharing { line, conflicts, words, footprints: distinct.len() });
    }
    findings.sort_by(|a, b| b.conflicts.cmp(&a.conflicts).then(a.line.cmp(&b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_core::AbortCause;

    fn ev(victim: u32, aggressor: Option<u32>, line: u32) -> ConflictEvent {
        ConflictEvent { victim, aggressor, line: LineId(line), cause: AbortCause::ConflictTxStore }
    }

    /// A block footprint: (loaded words, stored words).
    fn blk(loads: &[u32], stores: &[u32]) -> (Vec<u32>, Vec<u32>) {
        (loads.to_vec(), stores.to_vec())
    }

    #[test]
    fn matrix_counts_pairs_and_lines() {
        let m = ConflictMatrix::from_events([ev(0, Some(1), 5), ev(0, Some(1), 5), ev(1, None, 6)]);
        assert_eq!(m.total(), 3);
        assert_eq!(m.pair(0, Some(1)), 2);
        assert_eq!(m.pair(1, None), 1);
        assert_eq!(m.pair(2, None), 0);
        assert_eq!(m.line(LineId(5)), 2);
        assert_eq!(m.hottest(), Some((LineId(5), 2)));
        assert_eq!(m.hot_lines(), vec![(LineId(5), 2), (LineId(6), 1)]);
        let shown = m.to_string();
        assert!(shown.contains("thread 1 doomed thread 0: 2"), "{shown}");
    }

    #[test]
    fn hot_keys_resolve_lines_deterministically() {
        let m = ConflictMatrix::from_events([
            ev(0, Some(1), 5),
            ev(0, Some(1), 5),
            ev(1, Some(0), 5),
            ev(1, None, 6),
        ]);
        let mut key_lines = BTreeMap::new();
        key_lines.insert(42u64, LineId(5));
        key_lines.insert(7u64, LineId(6));
        key_lines.insert(99u64, LineId(100)); // cold line: omitted
        key_lines.insert(43u64, LineId(5)); // shares the hot line with 42
        let hot = hot_keys(&m, &key_lines);
        assert_eq!(
            hot,
            vec![
                HotKey { key: 42, line: LineId(5), conflicts: 3 },
                HotKey { key: 43, line: LineId(5), conflicts: 3 },
                HotKey { key: 7, line: LineId(6), conflicts: 1 },
            ]
        );
        assert!(hot[0].to_string().contains("key 42"));
        assert!(hot_keys(&ConflictMatrix::default(), &key_lines).is_empty());
    }

    #[test]
    fn disjoint_block_footprints_are_false_sharing() {
        // 8 words per line; two blocks write different words of line 0.
        let m = ConflictMatrix::from_events([ev(0, Some(1), 0), ev(1, Some(0), 0)]);
        let blocks = vec![blk(&[], &[0]), blk(&[], &[4])];
        let f = detect_false_sharing(&m, &blocks, 8, 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, LineId(0));
        assert_eq!(f[0].words, vec![WordAddr(0), WordAddr(4)]);
        assert_eq!(f[0].footprints, 2);
        assert_eq!(f[0].conflicts, 2);
        assert!(f[0].to_string().contains("false sharing"));
    }

    #[test]
    fn true_sharing_is_not_flagged() {
        // Both blocks write the same word: a genuine conflict.
        let m = ConflictMatrix::from_events([ev(0, Some(1), 0)]);
        let blocks = vec![blk(&[3], &[3]), blk(&[3], &[3])];
        assert!(detect_false_sharing(&m, &blocks, 8, 1).is_empty());
    }

    #[test]
    fn read_only_disjoint_footprints_are_not_flagged() {
        let m = ConflictMatrix::from_events([ev(0, Some(1), 0)]);
        let blocks = vec![blk(&[0], &[]), blk(&[4], &[])];
        assert!(detect_false_sharing(&m, &blocks, 8, 1).is_empty());
    }

    #[test]
    fn cold_lines_are_skipped() {
        let m = ConflictMatrix::from_events([ev(0, Some(1), 0)]);
        let blocks = vec![blk(&[], &[0]), blk(&[], &[4])];
        assert!(detect_false_sharing(&m, &blocks, 8, 10).is_empty(), "below min_conflicts");
    }

    #[test]
    fn overlapping_plus_disjoint_pair_still_flags() {
        // Two block shapes overlap on word 3, but a third is disjoint from
        // both — the line still shows false sharing.
        let m = ConflictMatrix::from_events([ev(0, Some(2), 0), ev(2, Some(0), 0)]);
        let blocks = vec![blk(&[3], &[3]), blk(&[3, 4], &[3]), blk(&[5], &[5])];
        let f = detect_false_sharing(&m, &blocks, 8, 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].footprints, 3);
    }

    #[test]
    fn identical_footprints_collapse() {
        // kmeans-style: many blocks, few distinct shapes, disjoint records
        // packed on one line.
        let m = ConflictMatrix::from_events(vec![ev(0, Some(1), 0); 20]);
        let mut blocks = Vec::new();
        for _ in 0..100 {
            blocks.push(blk(&[0, 1], &[0, 1]));
            blocks.push(blk(&[4, 5], &[4, 5]));
        }
        let f = detect_false_sharing(&m, &blocks, 8, 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].footprints, 2);
        assert_eq!(f[0].words.len(), 4);
    }
}
