//! Adaptive-controller feedback export: turns the per-thread telemetry the
//! adaptive contention manager leaves in [`RunStats`](htm_runtime::RunStats)
//! — tier switches, backoff cycles, capacity spills, starvation rescues —
//! into a machine-readable report for offline tuning.
//!
//! The controller itself consumes abort causes *online*; this pass closes
//! the loop offline: a grid runner (or the `adaptive` spec's TSV) can
//! diff these summaries across cells to see where the ladder settled, how
//! much commit bandwidth each tier carried, and whether the watchdog ever
//! had to rescue a starving block.

use std::fmt;

use htm_runtime::RunStats;

use crate::json::Json;

/// One thread's adaptive telemetry, plus the commit mix the ladder
/// produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadFeedback {
    /// Worker thread index.
    pub thread: u32,
    /// Commits per tier: hardware, spilled, ROT, STM, irrevocable.
    pub commits: [u64; 5],
    /// Observation-window boundary tier changes.
    pub tier_switches: u64,
    /// Simulated cycles spent in randomized backoff.
    pub backoff_cycles: u64,
    /// Tracker entries spilled to the software side log.
    pub capacity_spills: u64,
    /// Starvation-bound rescues forced by the watchdog.
    pub starvation_rescues: u64,
}

/// The run-level adaptive feedback: per-thread rows plus totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptFeedback {
    /// Per-thread telemetry, thread-ordered.
    pub threads: Vec<ThreadFeedback>,
}

impl AdaptFeedback {
    /// Extracts the feedback from a finished run's statistics. Runs under
    /// a static fallback policy yield all-zero telemetry (the controller
    /// never ran), which downstream consumers treat as "nothing to tune".
    pub fn from_stats(stats: &RunStats) -> AdaptFeedback {
        AdaptFeedback {
            threads: stats
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| ThreadFeedback {
                    thread: i as u32,
                    commits: [
                        t.hw_commits,
                        t.spill_commits,
                        t.rot_commits,
                        t.stm_commits,
                        t.irrevocable_commits,
                    ],
                    tier_switches: t.tier_switches,
                    backoff_cycles: t.backoff_cycles,
                    capacity_spills: t.capacity_spills,
                    starvation_rescues: t.adapt_starvation_rescues,
                })
                .collect(),
        }
    }

    /// Total tier switches across all threads.
    pub fn tier_switches(&self) -> u64 {
        self.threads.iter().map(|t| t.tier_switches).sum()
    }

    /// The fraction of commits that needed any software tier (spill, ROT,
    /// STM or the lock); 0.0 on an idle or all-hardware run.
    pub fn software_commit_fraction(&self) -> f64 {
        let (mut hw, mut total) = (0u64, 0u64);
        for t in &self.threads {
            hw += t.commits[0];
            total += t.commits.iter().sum::<u64>();
        }
        if total == 0 {
            0.0
        } else {
            1.0 - hw as f64 / total as f64
        }
    }

    /// True when the controller never moved and nothing spilled — the
    /// run behaved exactly like static hardware-first execution.
    pub fn quiet(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.tier_switches == 0 && t.capacity_spills == 0 && t.starvation_rescues == 0)
    }

    /// The feedback as a JSON value (one object per thread plus totals),
    /// for the experiment sinks and external tooling.
    pub fn to_json(&self) -> Json {
        let tiers = ["hw", "spill", "rot", "stm", "irrevocable"];
        let threads: Vec<Json> = self
            .threads
            .iter()
            .map(|t| {
                let commits: Vec<(String, Json)> = tiers
                    .iter()
                    .zip(t.commits)
                    .map(|(name, n)| ((*name).to_string(), Json::Num(n as f64)))
                    .collect();
                Json::Obj(vec![
                    ("thread".into(), Json::Num(t.thread as f64)),
                    ("commits".into(), Json::Obj(commits)),
                    ("tier_switches".into(), Json::Num(t.tier_switches as f64)),
                    ("backoff_cycles".into(), Json::Num(t.backoff_cycles as f64)),
                    ("capacity_spills".into(), Json::Num(t.capacity_spills as f64)),
                    ("starvation_rescues".into(), Json::Num(t.starvation_rescues as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("threads".into(), Json::Arr(threads)),
            ("tier_switches".into(), Json::Num(self.tier_switches() as f64)),
            ("software_commit_fraction".into(), Json::Num(self.software_commit_fraction())),
        ])
    }
}

impl fmt::Display for AdaptFeedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "adaptive feedback: {} tier switch(es), {:.0}% software commits",
            self.tier_switches(),
            self.software_commit_fraction() * 100.0
        )?;
        for t in &self.threads {
            writeln!(
                f,
                "  thread {}: hw {} / spill {} / rot {} / stm {} / lock {}, {} switch(es), \
                 {} backoff cycle(s), {} spill(s), {} rescue(s)",
                t.thread,
                t.commits[0],
                t.commits[1],
                t.commits[2],
                t.commits[3],
                t.commits[4],
                t.tier_switches,
                t.backoff_cycles,
                t.capacity_spills,
                t.starvation_rescues,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_runtime::ThreadStats;

    fn stats(threads: Vec<ThreadStats>) -> RunStats {
        RunStats { threads, ..Default::default() }
    }

    #[test]
    fn extracts_per_thread_telemetry_and_totals() {
        let a = ThreadStats {
            hw_commits: 6,
            spill_commits: 2,
            stm_commits: 1,
            irrevocable_commits: 1,
            tier_switches: 3,
            backoff_cycles: 400,
            capacity_spills: 5,
            adapt_starvation_rescues: 1,
            ..Default::default()
        };
        let b = ThreadStats { hw_commits: 10, tier_switches: 1, ..Default::default() };
        let fb = AdaptFeedback::from_stats(&stats(vec![a, b]));

        assert_eq!(fb.threads.len(), 2);
        assert_eq!(fb.threads[0].commits, [6, 2, 0, 1, 1]);
        assert_eq!(fb.threads[1].thread, 1);
        assert_eq!(fb.tier_switches(), 4);
        // 16 hardware commits of 20 total → 4/20 software.
        assert!((fb.software_commit_fraction() - 0.2).abs() < 1e-12);
        assert!(!fb.quiet());
        let shown = fb.to_string();
        assert!(shown.contains("4 tier switch(es)"), "{shown}");
        assert!(shown.contains("thread 0: hw 6 / spill 2"), "{shown}");
    }

    #[test]
    fn static_runs_read_as_quiet() {
        let t = ThreadStats { hw_commits: 100, irrevocable_commits: 3, ..Default::default() };
        let fb = AdaptFeedback::from_stats(&stats(vec![t]));
        assert!(fb.quiet());
        assert!(fb.software_commit_fraction() > 0.0, "lock commits are software");
        assert_eq!(fb.tier_switches(), 0);
    }

    #[test]
    fn empty_run_divides_by_nothing() {
        let fb = AdaptFeedback::from_stats(&stats(Vec::new()));
        assert!(fb.quiet());
        assert_eq!(fb.software_commit_fraction(), 0.0);
        assert!(fb.to_json().to_string().contains("\"threads\":[]"));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let t =
            ThreadStats { hw_commits: 3, spill_commits: 1, tier_switches: 2, ..Default::default() };
        let fb = AdaptFeedback::from_stats(&stats(vec![t]));
        let parsed = Json::parse(&fb.to_json().to_string()).expect("valid JSON");
        assert_eq!(parsed.get("tier_switches").and_then(Json::as_f64), Some(2.0));
        let rows = parsed.get("threads").and_then(Json::as_arr).expect("thread rows");
        assert_eq!(
            rows[0].get("commits").and_then(|c| c.get("spill")).and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
