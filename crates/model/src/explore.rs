//! The systematic schedule explorer.
//!
//! [`explore`] enumerates block-level interleavings of a [`Kernel`] running
//! on the *real* TM engine, one controlled execution per schedule: a fresh
//! [`Sim`] is built, a [`Controller`](crate::sched::Controller) serializes
//! the workers, and the forced schedule prefix steers execution down the
//! next unexplored branch. On every completed schedule the checker verifies
//!
//! * **serializability** — the runtime certifier's conflict-graph check
//!   over committed events ([`RunStats::certify`]);
//! * **opacity** — every read in every *aborted* attempt is justified by a
//!   consistent committed snapshot ([`RunStats::opacity`]);
//! * **serial equivalence** — the final memory digest matches one of the
//!   kernel's block-level serial executions (a value-blind catch-all for
//!   lost updates and dirty publishes);
//! * **deadlock / starvation** — structured verdicts from the controller.
//!
//! Exploration modes: [`Mode::Naive`] branches over every runnable thread
//! at every step (the reference enumeration); [`Mode::Dpor`] prunes with
//! dynamic partial-order reduction — conflict-driven backtrack ("persistent")
//! sets plus sleep sets over line-granular step footprints — and must reach
//! the same violations and final states; [`Mode::BoundedPreemption`] caps
//! preemptive context switches (naive within the bound).

use std::collections::BTreeSet;
use std::fmt;

use htm_core::coop::EPOCH_LINE;
use htm_machine::{BgqMode, MachineConfig, Platform};
use htm_runtime::{FallbackPolicy, RetryPolicy, Sim, SimConfig};

use crate::kernel::Kernel;
use crate::sched::{conflicts, Controller, Decision, Footprint, SchedAbort};

/// Which rung of the fallback ladder the kernel's blocks exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Hardware transactions with the default lock fallback.
    Hw,
    /// NOrec-style software fallback tier.
    Stm,
    /// POWER8 rollback-only fallback tier (capacity-spill sibling of the
    /// same software-validated commit path).
    Rot,
    /// Zero retries: every block goes straight to the irrevocable lock.
    Lock,
    /// The adaptive contention manager picks tiers online.
    Adaptive,
}

/// All five fallback tiers, the full model-checking ladder.
pub const ALL_TIERS: [Tier; 5] = [Tier::Hw, Tier::Stm, Tier::Rot, Tier::Lock, Tier::Adaptive];

impl Tier {
    pub fn key(self) -> &'static str {
        match self {
            Tier::Hw => "hw",
            Tier::Stm => "stm",
            Tier::Rot => "rot",
            Tier::Lock => "lock",
            Tier::Adaptive => "adaptive",
        }
    }

    pub fn parse(s: &str) -> Option<Tier> {
        ALL_TIERS.into_iter().find(|t| t.key() == s)
    }

    fn policy(self) -> (FallbackPolicy, RetryPolicy) {
        match self {
            // One retry keeps adversarial schedules short without hiding
            // any tier transition the checker cares about.
            Tier::Hw => (FallbackPolicy::Lock, RetryPolicy::uniform(1)),
            // No hardware retries: the first abort falls straight to the
            // software tier, the commit surface this rung exists to check.
            Tier::Stm => (FallbackPolicy::Stm, RetryPolicy::uniform(0)),
            Tier::Rot => (FallbackPolicy::Rot, RetryPolicy::uniform(1)),
            Tier::Lock => (FallbackPolicy::Lock, RetryPolicy::uniform(0)),
            Tier::Adaptive => (FallbackPolicy::Adaptive, RetryPolicy::uniform(1)),
        }
    }
}

/// Engine bugs the regression corpus seeds (test-only hooks in the
/// substrate; see `TxMemory::set_test_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    None,
    /// Writers stop dooming readers: classic lost update.
    SkipReaderDoom,
    /// Software commits skip the epoch bump: torn soft-read snapshots.
    SkipEpochBump,
    /// ROT commits publish the write buffer before validation: dirty
    /// never-committed values escape.
    EarlyRotPublish,
}

impl SeededBug {
    pub fn key(self) -> &'static str {
        match self {
            SeededBug::None => "none",
            SeededBug::SkipReaderDoom => "skip-reader-doom",
            SeededBug::SkipEpochBump => "skip-epoch-bump",
            SeededBug::EarlyRotPublish => "early-rot-publish",
        }
    }

    pub fn parse(s: &str) -> Option<SeededBug> {
        [
            SeededBug::None,
            SeededBug::SkipReaderDoom,
            SeededBug::SkipEpochBump,
            SeededBug::EarlyRotPublish,
        ]
        .into_iter()
        .find(|b| b.key() == s)
    }

    fn arm(self, mem: &htm_core::TxMemory) {
        match self {
            SeededBug::None => {}
            SeededBug::SkipReaderDoom => mem.set_test_skip_reader_doom(true),
            SeededBug::SkipEpochBump => mem.set_test_skip_epoch_bump(true),
            SeededBug::EarlyRotPublish => mem.set_test_early_rot_publish(true),
        }
    }
}

/// Exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full branching over every runnable thread at every step.
    Naive,
    /// Sleep sets + conflict-driven backtrack sets over step footprints.
    Dpor,
    /// At most `n` preemptive context switches (naive within the bound).
    BoundedPreemption(u32),
}

/// One model-checking job.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    pub kernel: Kernel,
    pub platform: Platform,
    pub tier: Tier,
    pub seed: u64,
    pub bug: SeededBug,
    pub mode: Mode,
    /// Safety cap on executed schedules; hitting it marks the report
    /// truncated (never silently).
    pub max_schedules: u64,
    /// Per-schedule step bound (starvation/livelock verdict past it).
    pub max_steps: u64,
}

impl ModelConfig {
    pub fn new(kernel: Kernel, platform: Platform, tier: Tier) -> ModelConfig {
        ModelConfig {
            kernel,
            platform,
            tier,
            seed: 1,
            bug: SeededBug::None,
            mode: Mode::Dpor,
            max_schedules: 200_000,
            max_steps: 3_000,
        }
    }

    pub fn bug(mut self, bug: SeededBug) -> ModelConfig {
        self.bug = bug;
        self
    }

    pub fn mode(mut self, mode: Mode) -> ModelConfig {
        self.mode = mode;
        self
    }

    pub fn max_schedules(mut self, n: u64) -> ModelConfig {
        self.max_schedules = n;
        self
    }
}

/// Violation classes the checker reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationClass {
    /// Conflict-graph violation over committed events (stale read, lost
    /// update, wild read...).
    Certify,
    /// An aborted attempt observed no consistent snapshot.
    Opacity,
    /// All live threads blocked on each other.
    Deadlock,
    /// Schedule exceeded the step bound (livelock/starvation).
    Starvation,
    /// Final memory state matches no serial block-level execution.
    NonSerializable,
    /// A worker died outside the controller's own verdicts.
    Panic,
}

impl ViolationClass {
    pub fn key(self) -> &'static str {
        match self {
            ViolationClass::Certify => "certify",
            ViolationClass::Opacity => "opacity",
            ViolationClass::Deadlock => "deadlock",
            ViolationClass::Starvation => "starvation",
            ViolationClass::NonSerializable => "non-serializable",
            ViolationClass::Panic => "panic",
        }
    }

    pub fn parse(s: &str) -> Option<ViolationClass> {
        [
            ViolationClass::Certify,
            ViolationClass::Opacity,
            ViolationClass::Deadlock,
            ViolationClass::Starvation,
            ViolationClass::NonSerializable,
            ViolationClass::Panic,
        ]
        .into_iter()
        .find(|c| c.key() == s)
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A minimal reproducer: the exact schedule that exhibited the violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub class: ViolationClass,
    pub detail: String,
    /// Grant sequence (thread per step) to force for a deterministic
    /// replay.
    pub schedule: Vec<u32>,
    /// Human-readable interleaving diagram.
    pub diagram: String,
}

/// What one exploration found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    pub kernel: String,
    pub platform: Platform,
    pub tier: Tier,
    pub mode: Mode,
    pub bug: SeededBug,
    /// Schedules actually executed.
    pub schedules: u64,
    /// Total scheduling decisions across all executed schedules.
    pub steps_total: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
    /// Branch choices skipped by sleep-set pruning.
    pub sleep_pruned: u64,
    /// Distinct final memory digests across completed schedules (the
    /// explored state space's frontier).
    pub digests: BTreeSet<u64>,
    /// Schedules that exhibited at least one violation.
    pub violating_schedules: u64,
    /// First counterexample per violation class.
    pub counterexamples: Vec<Counterexample>,
    /// Exploration hit `max_schedules` before exhausting the space.
    pub truncated: bool,
}

impl ExploreReport {
    pub fn ok(&self) -> bool {
        self.counterexamples.is_empty()
    }

    pub fn has(&self, class: ViolationClass) -> bool {
        self.counterexamples.iter().any(|c| c.class == class)
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model-check {} on {:?}/{}: {} schedule(s), {} step(s), depth {}, \
             {} sleep-pruned, {} final state(s), {} violating{}",
            self.kernel,
            self.platform,
            self.tier.key(),
            self.schedules,
            self.steps_total,
            self.max_depth,
            self.sleep_pruned,
            self.digests.len(),
            self.violating_schedules,
            if self.truncated { " [TRUNCATED]" } else { "" },
        )?;
        for c in &self.counterexamples {
            writeln!(f, "  {}: {}", c.class, c.detail)?;
        }
        Ok(())
    }
}

struct Node {
    chosen: u32,
    candidates: Vec<u32>,
    promoted: bool,
    fp: Footprint,
    done: BTreeSet<u32>,
    todo: BTreeSet<u32>,
    /// Siblings already fully explored from this node, with the footprint
    /// of their first step (sleep-set currency).
    explored: Vec<(u32, Footprint)>,
    sleep: Vec<(u32, Footprint)>,
}

struct RunRecord {
    log: Vec<Decision>,
    abort: Option<SchedAbort>,
    error: Option<String>,
    stats: Option<htm_runtime::RunStats>,
    digest: Option<u64>,
}

fn machine_for(platform: Platform) -> MachineConfig {
    match platform {
        Platform::BlueGeneQ => MachineConfig::blue_gene_q(BgqMode::ShortRunning),
        Platform::Zec12 => MachineConfig::zec12(),
        Platform::IntelCore => MachineConfig::intel_core(),
        Platform::Power8 => MachineConfig::power8(),
    }
}

/// Builds the Sim for one controlled execution, allocating one isolated
/// 256-byte-aligned line per kernel variable so the layout (and hence the
/// memory digest) is identical across schedules and tiers.
fn build_sim(cfg: &ModelConfig, certify: bool) -> (Sim, Vec<htm_core::WordAddr>) {
    let (fallback, _) = cfg.tier.policy();
    // Allocation is deterministic, so a probe run of the allocator tells us
    // the variable addresses the real Sim will hand out — which the opacity
    // checker needs as explicit initial values *at construction time*.
    let mk = |init: Vec<(htm_core::WordAddr, u64)>| {
        Sim::new(
            SimConfig::new(machine_for(cfg.platform))
                .mem_words(1 << 12)
                .seed(cfg.seed)
                .fallback(fallback)
                .certify(certify)
                .certify_init(init),
        )
    };
    let alloc_vars = |sim: &Sim| -> Vec<htm_core::WordAddr> {
        (0..cfg.kernel.vars).map(|_| sim.alloc().alloc_aligned(1, 256)).collect()
    };
    let probe = mk(Vec::new());
    let addrs = alloc_vars(&probe);
    drop(probe);
    let init: Vec<(htm_core::WordAddr, u64)> =
        addrs.iter().enumerate().map(|(i, &a)| (a, cfg.kernel.init_of(i))).collect();
    let sim = mk(init);
    let real = alloc_vars(&sim);
    assert_eq!(real, addrs, "allocator must be deterministic");
    for (i, &a) in real.iter().enumerate() {
        sim.write_word(a, cfg.kernel.init_of(i));
    }
    (sim, real)
}

/// Final digests of every serial block-level execution (the reference set
/// any serializable interleaving must land in).
pub fn serial_digests(cfg: &ModelConfig) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for order in cfg.kernel.serial_orders() {
        let (sim, addrs) = build_sim(cfg, false);
        sim.run_sequential(|ctx| {
            for &(tid, idx) in &order {
                cfg.kernel.run_one_block(ctx, tid, idx, &addrs);
            }
        });
        out.insert(sim.memory_digest());
    }
    out
}

/// Runs one schedule: `forced` pins the grant sequence prefix, the
/// controller's deterministic default policy extends it.
fn execute(cfg: &ModelConfig, forced: &[u32]) -> RunRecord {
    let (sim, addrs) = build_sim(cfg, true);
    cfg.bug.arm(sim.mem());
    let n = cfg.kernel.nthreads();
    let (_, policy) = cfg.tier.policy();
    let ctrl = match cfg.mode {
        Mode::BoundedPreemption(b) => {
            Controller::with_preemption_bound(n, forced.to_vec(), cfg.max_steps, b)
        }
        _ => Controller::new(n, forced.to_vec(), cfg.max_steps),
    };
    let kernel = &cfg.kernel;
    let result = sim.try_run_parallel(n, policy, |ctx| {
        let tid = ctx.thread_id();
        let _hooks = htm_core::coop::install(ctrl.hooks(tid));
        let _done = ctrl.finish_guard(tid);
        ctrl.register(tid);
        kernel.run_thread(ctx, tid, &addrs);
    });
    let (log, abort) = ctrl.take_result();
    match result {
        Ok(stats) => RunRecord {
            log,
            abort,
            error: None,
            digest: Some(sim.memory_digest()),
            stats: Some(stats),
        },
        Err(e) => {
            let error = abort.is_none().then(|| e.to_string());
            RunRecord { log, abort, error, stats: None, digest: None }
        }
    }
}

fn check(rec: &RunRecord, serial: &BTreeSet<u64>) -> Vec<(ViolationClass, String)> {
    let mut out = Vec::new();
    match &rec.abort {
        Some(SchedAbort::Deadlock(m)) => out.push((ViolationClass::Deadlock, m.clone())),
        Some(SchedAbort::StepBound(m)) => out.push((ViolationClass::Starvation, m.clone())),
        Some(SchedAbort::Divergence(m)) => out.push((ViolationClass::Panic, m.clone())),
        None => {}
    }
    if let Some(e) = &rec.error {
        out.push((ViolationClass::Panic, e.clone()));
    }
    if let Some(stats) = &rec.stats {
        if let Some(c) = &stats.certify {
            if !c.ok() {
                let first = c.violations.first().map(|v| v.to_string()).unwrap_or_default();
                out.push((
                    ViolationClass::Certify,
                    format!("{} committed-event violation(s); first: {first}", c.violations.len()),
                ));
            }
        }
        if let Some(o) = &stats.opacity {
            if !o.ok() {
                let first = o.violations.first().map(|v| v.to_string()).unwrap_or_default();
                out.push((
                    ViolationClass::Opacity,
                    format!(
                        "{} aborted attempt(s) saw no consistent snapshot; first: {first}",
                        o.violations.len()
                    ),
                ));
            }
        }
    }
    if let Some(d) = rec.digest {
        if !serial.contains(&d) {
            out.push((
                ViolationClass::NonSerializable,
                format!(
                    "final memory digest {d:#x} matches none of the {} serial block orders",
                    serial.len()
                ),
            ));
        }
    }
    out
}

/// Replays one forced schedule (the trace-replay entry point): a single
/// controlled execution, returning the violations found and the
/// interleaving diagram.
pub fn replay_forced(cfg: &ModelConfig, forced: &[u32]) -> (Vec<(ViolationClass, String)>, String) {
    let serial = serial_digests(cfg);
    let rec = execute(cfg, forced);
    (check(&rec, &serial), diagram(&rec.log))
}

/// Renders a schedule log as a per-thread-column interleaving diagram.
pub fn diagram(log: &[Decision]) -> String {
    let mut out = String::new();
    for (i, d) in log.iter().enumerate() {
        let end = match d.end_point {
            Some(p) => format!("{p:?}"),
            None => "Done".to_string(),
        };
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for (&line, &w) in &d.fp {
            let name = if line == EPOCH_LINE { "epoch".to_string() } else { format!("L{line}") };
            if w {
                writes.push(name);
            } else {
                reads.push(name);
            }
        }
        let mut fp = String::new();
        if !reads.is_empty() {
            fp.push_str(&format!(" r[{}]", reads.join(",")));
        }
        if !writes.is_empty() {
            fp.push_str(&format!(" w[{}]", writes.join(",")));
        }
        let pad = "                          ".repeat(d.chosen as usize % 4);
        let probe = if d.promoted { " (blocked-probe)" } else { "" };
        out.push_str(&format!("{i:>4} {pad}| T{} -> {end}{fp}{probe}\n", d.chosen));
    }
    out
}

fn inherit_sleep(parent: &Node) -> Vec<(u32, Footprint)> {
    let mut s = parent.sleep.clone();
    for (t, fp) in &parent.explored {
        s.push((*t, fp.clone()));
    }
    s.retain(|(t, fp)| *t != parent.chosen && !conflicts(fp, &parent.fp));
    s
}

/// Explores the schedule space of `cfg`, returning what it found. The
/// enumeration is exhaustive (up to the documented pruning of the chosen
/// mode) unless the report says `truncated`.
pub fn explore(cfg: &ModelConfig) -> ExploreReport {
    let serial = serial_digests(cfg);
    let naive_branching = !matches!(cfg.mode, Mode::Dpor);
    let dpor = matches!(cfg.mode, Mode::Dpor);
    let mut report = ExploreReport {
        kernel: cfg.kernel.name.to_string(),
        platform: cfg.platform,
        tier: cfg.tier,
        mode: cfg.mode,
        bug: cfg.bug,
        schedules: 0,
        steps_total: 0,
        max_depth: 0,
        sleep_pruned: 0,
        digests: BTreeSet::new(),
        violating_schedules: 0,
        counterexamples: Vec::new(),
        truncated: false,
    };
    let mut path: Vec<Node> = Vec::new();
    loop {
        if report.schedules >= cfg.max_schedules {
            report.truncated = true;
            break;
        }
        let forced: Vec<u32> = path.iter().map(|n| n.chosen).collect();
        let rec = execute(cfg, &forced);
        report.schedules += 1;
        report.steps_total += rec.log.len() as u64;
        report.max_depth = report.max_depth.max(rec.log.len());
        // Refresh the retained prefix (the branch node's step footprint is
        // new) and verify the execution is deterministic w.r.t. the forced
        // prefix.
        let mut diverged = false;
        for (i, n) in path.iter_mut().enumerate() {
            match rec.log.get(i) {
                Some(d) if d.chosen == n.chosen => {
                    n.fp = d.fp.clone();
                    n.candidates = d.candidates.clone();
                    n.promoted = d.promoted;
                }
                _ => {
                    diverged = true;
                    break;
                }
            }
        }
        if diverged {
            report.counterexamples.push(Counterexample {
                class: ViolationClass::Panic,
                detail: "nondeterministic re-execution: the forced schedule prefix \
                         produced a different decision log"
                    .to_string(),
                schedule: forced,
                diagram: diagram(&rec.log),
            });
            break;
        }
        let viols = check(&rec, &serial);
        if !viols.is_empty() {
            report.violating_schedules += 1;
        }
        for (class, detail) in viols {
            if !report.counterexamples.iter().any(|c| c.class == class) {
                report.counterexamples.push(Counterexample {
                    class,
                    detail,
                    schedule: rec.log.iter().map(|d| d.chosen).collect(),
                    diagram: diagram(&rec.log),
                });
            }
        }
        if let Some(d) = rec.digest {
            report.digests.insert(d);
        }
        // Extend the path with the newly executed suffix.
        for i in path.len()..rec.log.len() {
            let d = &rec.log[i];
            // Sleep sets are a DPOR device; naive and bounded-preemption
            // modes are reference enumerations and must not prune.
            let sleep = if dpor && i > 0 { inherit_sleep(&path[i - 1]) } else { Vec::new() };
            let mut node = Node {
                chosen: d.chosen,
                candidates: d.candidates.clone(),
                promoted: d.promoted,
                fp: d.fp.clone(),
                done: BTreeSet::from([d.chosen]),
                todo: BTreeSet::new(),
                explored: Vec::new(),
                sleep,
            };
            if naive_branching && !d.promoted {
                node.todo = d.candidates.iter().copied().collect();
            }
            path.push(node);
        }
        if dpor {
            // Conflict-driven backtrack sets: a later step of another thread
            // that conflicts with step i must be schedulable at i. No
            // happens-before refinement — conservative, hence a superset of
            // the minimal persistent sets (sound, merely less pruning).
            for j in 0..path.len() {
                if path[j].promoted {
                    continue;
                }
                let tj = path[j].chosen;
                for i in 0..j {
                    if path[i].promoted || path[i].chosen == tj {
                        continue;
                    }
                    if conflicts(&path[i].fp, &path[j].fp) {
                        if path[i].candidates.contains(&tj) {
                            path[i].todo.insert(tj);
                        } else {
                            let cands = path[i].candidates.clone();
                            path[i].todo.extend(cands);
                        }
                    }
                }
            }
        }
        // Backtrack to the deepest node with an unexplored, unslept choice.
        let mut advanced = false;
        while let Some(mut node) = path.pop() {
            let picks: Vec<u32> =
                node.todo.iter().copied().filter(|t| !node.done.contains(t)).collect();
            let mut next = None;
            for t in picks {
                if node.sleep.iter().any(|(s, _)| *s == t) {
                    node.done.insert(t);
                    report.sleep_pruned += 1;
                    continue;
                }
                next = Some(t);
                break;
            }
            if let Some(t) = next {
                node.explored.push((node.chosen, std::mem::take(&mut node.fp)));
                node.done.insert(t);
                node.chosen = t;
                path.push(node);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel;

    #[test]
    fn tier_and_bug_and_class_keys_round_trip() {
        for t in ALL_TIERS {
            assert_eq!(Tier::parse(t.key()), Some(t));
        }
        for b in [
            SeededBug::None,
            SeededBug::SkipReaderDoom,
            SeededBug::SkipEpochBump,
            SeededBug::EarlyRotPublish,
        ] {
            assert_eq!(SeededBug::parse(b.key()), Some(b));
        }
        for c in [
            ViolationClass::Certify,
            ViolationClass::Opacity,
            ViolationClass::Deadlock,
            ViolationClass::Starvation,
            ViolationClass::NonSerializable,
            ViolationClass::Panic,
        ] {
            assert_eq!(ViolationClass::parse(c.key()), Some(c));
        }
        assert_eq!(Tier::parse("warp"), None);
    }

    #[test]
    fn serial_digests_of_commuting_blocks_collapse() {
        // All three counter serial orders produce the same final state.
        let cfg = ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw);
        assert_eq!(serial_digests(&cfg).len(), 1);
    }

    #[test]
    fn single_execution_is_deterministic() {
        let cfg = ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw);
        let a = execute(&cfg, &[]);
        let b = execute(&cfg, &[]);
        assert!(a.abort.is_none() && b.abort.is_none());
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            a.log.iter().map(|d| d.chosen).collect::<Vec<_>>(),
            b.log.iter().map(|d| d.chosen).collect::<Vec<_>>(),
        );
    }
}
