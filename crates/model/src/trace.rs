//! Replayable counterexample traces.
//!
//! A [`ModelTrace`] pins everything a violation needs to reproduce: the
//! kernel (by suite name), platform, tier, seed, seeded bug, the violation
//! class, and the exact grant schedule. [`ModelTrace::replay`] rebuilds the
//! identical [`ModelConfig`](crate::ModelConfig), forces the recorded
//! schedule through a fresh controlled execution, and checks that the same
//! violation class reappears — deterministically, every time.
//!
//! The text format (`htm-model-trace v1`) is line-oriented and diffable;
//! `#`-prefixed lines are comments (the saved interleaving diagram rides
//! along as one).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

use htm_machine::Platform;

use crate::explore::{Counterexample, ModelConfig, SeededBug, Tier, ViolationClass};
use crate::kernel;

const HEADER: &str = "htm-model-trace v1";

/// A saved, replayable counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelTrace {
    pub kernel: String,
    pub platform: Platform,
    pub tier: Tier,
    pub seed: u64,
    pub bug: SeededBug,
    pub class: ViolationClass,
    pub detail: String,
    pub schedule: Vec<u32>,
}

fn platform_key(p: Platform) -> &'static str {
    match p {
        Platform::BlueGeneQ => "bgq",
        Platform::Zec12 => "zec12",
        Platform::IntelCore => "intel-core",
        Platform::Power8 => "power8",
    }
}

fn platform_parse(s: &str) -> Option<Platform> {
    [Platform::BlueGeneQ, Platform::Zec12, Platform::IntelCore, Platform::Power8]
        .into_iter()
        .find(|&p| platform_key(p) == s)
}

impl ModelTrace {
    /// Packages a counterexample found by [`crate::explore`].
    pub fn from_counterexample(cfg: &ModelConfig, cx: &Counterexample) -> ModelTrace {
        ModelTrace {
            kernel: cfg.kernel.name.to_string(),
            platform: cfg.platform,
            tier: cfg.tier,
            seed: cfg.seed,
            bug: cfg.bug,
            class: cx.class,
            detail: cx.detail.lines().next().unwrap_or_default().to_string(),
            schedule: cx.schedule.clone(),
        }
    }

    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{HEADER}");
        let _ = writeln!(s, "kernel {}", self.kernel);
        let _ = writeln!(s, "platform {}", platform_key(self.platform));
        let _ = writeln!(s, "tier {}", self.tier.key());
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "bug {}", self.bug.key());
        let _ = writeln!(s, "violation {} {}", self.class.key(), self.detail);
        let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(s, "schedule {}", sched.join(" "));
        s
    }

    pub fn from_text(text: &str) -> Result<ModelTrace, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty() && !l.starts_with('#'));
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(format!("not a model trace (missing `{HEADER}` header)"));
        }
        let mut kernel = None;
        let mut platform = None;
        let mut tier = None;
        let mut seed = None;
        let mut bug = None;
        let mut class = None;
        let mut detail = String::new();
        let mut schedule = None;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line.trim(), ""));
            let rest = rest.trim();
            match key {
                "kernel" => kernel = Some(rest.to_string()),
                "platform" => {
                    platform =
                        Some(platform_parse(rest).ok_or(format!("unknown platform `{rest}`"))?)
                }
                "tier" => tier = Some(Tier::parse(rest).ok_or(format!("unknown tier `{rest}`"))?),
                "seed" => seed = Some(rest.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?),
                "bug" => bug = Some(SeededBug::parse(rest).ok_or(format!("unknown bug `{rest}`"))?),
                "violation" => {
                    let (c, d) = rest.split_once(' ').unwrap_or((rest, ""));
                    class = Some(ViolationClass::parse(c).ok_or(format!("unknown class `{c}`"))?);
                    detail = d.to_string();
                }
                "schedule" => {
                    let parsed: Result<Vec<u32>, _> =
                        rest.split_whitespace().map(str::parse).collect();
                    schedule = Some(parsed.map_err(|e| format!("bad schedule: {e}"))?);
                }
                other => return Err(format!("unknown trace line `{other}`")),
            }
        }
        Ok(ModelTrace {
            kernel: kernel.ok_or("missing kernel")?,
            platform: platform.ok_or("missing platform")?,
            tier: tier.ok_or("missing tier")?,
            seed: seed.ok_or("missing seed")?,
            bug: bug.ok_or("missing bug")?,
            class: class.ok_or("missing violation")?,
            detail,
            schedule: schedule.ok_or("missing schedule")?,
        })
    }

    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    pub fn load(path: impl AsRef<Path>) -> std::io::Result<ModelTrace> {
        let text = std::fs::read_to_string(path)?;
        ModelTrace::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Rebuilds the recorded configuration.
    pub fn config(&self) -> Result<ModelConfig, String> {
        let k = kernel::by_name(&self.kernel)
            .ok_or(format!("kernel `{}` is not in the model suite", self.kernel))?;
        let mut cfg = ModelConfig::new(k, self.platform, self.tier).bug(self.bug);
        cfg.seed = self.seed;
        Ok(cfg)
    }

    /// Re-executes the recorded schedule and verifies the recorded
    /// violation class reappears. Returns the replayed run's diagram.
    ///
    /// # Errors
    ///
    /// A message describing the divergence when the violation does not
    /// reproduce (or the trace references an unknown kernel).
    pub fn replay(&self) -> Result<String, String> {
        let cfg = self.config()?;
        let (found, diagram) = crate::explore::replay_forced(&cfg, &self.schedule);
        let classes: BTreeSet<ViolationClass> = found.iter().map(|&(c, _)| c).collect();
        if classes.contains(&self.class) {
            Ok(diagram)
        } else {
            Err(format!(
                "replay diverged: expected a `{}` violation, found {:?}",
                self.class.key(),
                classes.iter().map(|c| c.key()).collect::<Vec<_>>()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelTrace {
        ModelTrace {
            kernel: "counter".to_string(),
            platform: Platform::IntelCore,
            tier: Tier::Hw,
            seed: 7,
            bug: SeededBug::SkipReaderDoom,
            class: ViolationClass::Certify,
            detail: "1 committed-event violation(s)".to_string(),
            schedule: vec![0, 1, 1, 0, 0, 1],
        }
    }

    #[test]
    fn text_round_trip_preserves_every_field() {
        let t = sample();
        let parsed = ModelTrace::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn comment_lines_are_ignored_and_junk_is_rejected() {
        let t = sample();
        let mut text = String::from("# a diagram comment\n");
        text.push_str(&t.to_text());
        assert_eq!(ModelTrace::from_text(&text).unwrap(), t);
        assert!(ModelTrace::from_text("not a trace").is_err());
        assert!(ModelTrace::from_text(&t.to_text().replace("tier hw", "tier warp")).is_err());
        assert!(
            ModelTrace::from_text(&t.to_text().replace("schedule", "plan")).is_err(),
            "unknown keys must not parse"
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("htm-model-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cx.trace");
        t.save(&path).unwrap();
        assert_eq!(ModelTrace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
