//! The cooperative schedule controller.
//!
//! One [`Controller`] drives one execution of a kernel: every worker thread
//! installs a [`ControllerHooks`] handle as its `htm_core::coop` hook set,
//! registers, and from then on runs only while it holds the controller's
//! grant. Exactly one thread runs at a time; at every scheduling point the
//! pausing thread updates the shared state, picks the next thread (obeying
//! a forced schedule prefix when the explorer replays or extends a path),
//! and parks until re-granted.
//!
//! A *step* is everything a thread executes between two of its own pauses.
//! The controller records, per step, the chosen thread, the candidate set
//! the choice was made from, and the line-granular access footprint — the
//! inputs dynamic partial-order reduction needs.
//!
//! Threads that pause at [`CoopPoint::Blocked`] observed a condition only
//! another thread can change (a held lock, a committing slot, an odd
//! epoch). They are *disabled*: the controller does not schedule them while
//! any other thread is runnable, and re-enables them after any other thread
//! completes a step. Scheduling a blocked thread early would only re-run
//! its spin poll, so excluding it loses no behaviors. When every live
//! thread is blocked for several consecutive rounds the schedule is a
//! deadlock; a global step bound catches livelock/starvation.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};

use htm_core::coop::{CoopHooks, CoopPoint};

/// Line-granular step footprint: line id → whether the step wrote it.
/// [`htm_core::coop::EPOCH_LINE`] stands in for the hybrid commit epoch.
pub type Footprint = BTreeMap<u64, bool>;

/// Whether two step footprints conflict (both touch a line, at least one
/// write).
pub fn conflicts(a: &Footprint, b: &Footprint) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|(line, &w)| match large.get(line) {
        Some(&w2) => w || w2,
        None => false,
    })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Blocked,
    Done,
}

/// One scheduling decision: which thread was granted a step, out of which
/// candidates, and what the step touched.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Thread granted the step.
    pub chosen: u32,
    /// Runnable candidates the choice was made from. For grants that only
    /// re-enabled blocked threads this is just `[chosen]` (no real branch).
    pub candidates: Vec<u32>,
    /// The candidates were blocked threads re-enabled for a deadlock probe.
    pub promoted: bool,
    /// Access footprint of the step (filled when the thread next pauses).
    pub fp: Footprint,
    /// The point that ended the step; `None` means the thread finished.
    pub end_point: Option<CoopPoint>,
}

/// Why the controller aborted a schedule before it ran to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedAbort {
    /// Every live thread stayed blocked across repeated probe rounds.
    Deadlock(String),
    /// The schedule exceeded the global step bound (livelock/starvation).
    StepBound(String),
    /// A forced schedule did not match the execution (internal error or a
    /// trace replayed against the wrong kernel/config).
    Divergence(String),
}

impl SchedAbort {
    pub fn message(&self) -> &str {
        match self {
            SchedAbort::Deadlock(m) | SchedAbort::StepBound(m) | SchedAbort::Divergence(m) => m,
        }
    }
}

/// Distinctive prefix of the panic the controller raises to tear a doomed
/// schedule down through the executor's worker-panic recovery.
pub const ABORT_PANIC_PREFIX: &str = "htm-model schedule abort";

struct SchedState {
    status: Vec<ThreadState>,
    registered: u32,
    /// Thread currently granted the right to run (`None` once all done).
    current: Option<u32>,
    /// Previously granted thread (the no-switch default choice).
    prev: Option<u32>,
    forced: Vec<u32>,
    log: Vec<Decision>,
    /// Index into `log` of each thread's open (unfinished) step.
    open: Vec<Option<usize>>,
    /// Footprint accumulating for each thread's open step.
    cur_fp: Vec<Footprint>,
    /// Consecutive grant rounds where only blocked threads were runnable.
    blocked_streak: u32,
    preemptions: u32,
    abort: Option<SchedAbort>,
}

/// Shared scheduler for one controlled execution.
pub struct Controller {
    nthreads: u32,
    max_steps: u64,
    preemption_bound: Option<u32>,
    inner: Mutex<SchedState>,
    cv: Condvar,
}

impl Controller {
    /// `forced` pins the first `forced.len()` grants; past the prefix the
    /// default policy picks (deterministically) the previously running
    /// thread if still runnable, else the lowest-numbered runnable thread.
    pub fn new(nthreads: u32, forced: Vec<u32>, max_steps: u64) -> Arc<Controller> {
        Arc::new(Controller {
            nthreads,
            max_steps,
            preemption_bound: None,
            inner: Mutex::new(SchedState {
                status: vec![ThreadState::Ready; nthreads as usize],
                registered: 0,
                current: None,
                prev: None,
                forced,
                log: Vec::new(),
                open: vec![None; nthreads as usize],
                cur_fp: vec![Footprint::new(); nthreads as usize],
                blocked_streak: 0,
                preemptions: 0,
                abort: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Like [`Controller::new`] but capping preemptive context switches: a
    /// switch away from a still-runnable thread consumes one unit of
    /// `bound`; once exhausted, a runnable thread keeps running until it
    /// blocks or finishes.
    pub fn with_preemption_bound(
        nthreads: u32,
        forced: Vec<u32>,
        max_steps: u64,
        bound: u32,
    ) -> Arc<Controller> {
        let mut c = Controller::new(nthreads, forced, max_steps);
        Arc::get_mut(&mut c).expect("fresh controller").preemption_bound = Some(bound);
        c
    }

    /// Per-thread hook handle for [`htm_core::coop::install`].
    pub fn hooks(self: &Arc<Controller>, tid: u32) -> Rc<ControllerHooks> {
        Rc::new(ControllerHooks { ctrl: Arc::clone(self), tid })
    }

    /// Registers thread `tid` and parks until the first grant. Every worker
    /// must call this exactly once, before touching shared state.
    pub fn register(&self, tid: u32) {
        let mut s = self.inner.lock().unwrap();
        s.registered += 1;
        if s.registered == self.nthreads {
            self.grant_next(&mut s);
        }
        self.wait_for_grant(s, tid);
    }

    /// RAII completion guard: marks the thread done on drop (normal exit
    /// *and* unwind), so a panicking worker cannot strand its siblings.
    pub fn finish_guard(self: &Arc<Controller>, tid: u32) -> FinishGuard {
        FinishGuard { ctrl: Arc::clone(self), tid }
    }

    /// Drains the decision log and the abort verdict after the run.
    pub fn take_result(&self) -> (Vec<Decision>, Option<SchedAbort>) {
        let mut s = self.inner.lock().unwrap();
        (std::mem::take(&mut s.log), s.abort.clone())
    }

    fn pause(&self, tid: u32, point: CoopPoint) {
        let mut s = self.inner.lock().unwrap();
        self.close_step(&mut s, tid, Some(point));
        s.status[tid as usize] = if point == CoopPoint::Blocked {
            ThreadState::Blocked
        } else {
            s.blocked_streak = 0;
            ThreadState::Ready
        };
        if s.current == Some(tid) {
            s.prev = Some(tid);
            s.current = None;
            self.grant_next(&mut s);
        }
        self.wait_for_grant(s, tid);
    }

    fn access(&self, tid: u32, line: u64, write: bool) {
        let mut s = self.inner.lock().unwrap();
        let e = s.cur_fp[tid as usize].entry(line).or_insert(false);
        *e |= write;
    }

    fn finish(&self, tid: u32) {
        let mut s = self.inner.lock().unwrap();
        self.close_step(&mut s, tid, None);
        s.status[tid as usize] = ThreadState::Done;
        s.blocked_streak = 0;
        if s.current == Some(tid) || s.current.is_none() {
            s.prev = Some(tid);
            s.current = None;
            self.grant_next(&mut s);
        }
    }

    fn close_step(&self, s: &mut SchedState, tid: u32, point: Option<CoopPoint>) {
        if let Some(i) = s.open[tid as usize].take() {
            s.log[i].fp = std::mem::take(&mut s.cur_fp[tid as usize]);
            s.log[i].end_point = point;
        } else {
            // Accesses before the first grant (worker preamble) belong to no
            // step; drop them rather than attributing them to a later one.
            s.cur_fp[tid as usize].clear();
        }
    }

    /// Picks and grants the next step. Caller holds the state lock.
    fn grant_next(&self, s: &mut SchedState) {
        if s.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        let ready: Vec<u32> =
            (0..self.nthreads).filter(|&t| s.status[t as usize] == ThreadState::Ready).collect();
        let (mut candidates, promoted) = if !ready.is_empty() {
            s.blocked_streak = 0;
            (ready, false)
        } else {
            let blocked: Vec<u32> = (0..self.nthreads)
                .filter(|&t| s.status[t as usize] == ThreadState::Blocked)
                .collect();
            if blocked.is_empty() {
                // All threads done.
                self.cv.notify_all();
                return;
            }
            s.blocked_streak += 1;
            if s.blocked_streak > 16 * self.nthreads + 16 {
                s.abort = Some(SchedAbort::Deadlock(format!(
                    "deadlock: threads {blocked:?} stayed blocked through {} probe rounds",
                    s.blocked_streak
                )));
                self.cv.notify_all();
                return;
            }
            // Probe one blocked thread (it will re-check its condition and
            // re-block if nothing changed); the others stay blocked so the
            // streak keeps counting fruitless rounds.
            (blocked, true)
        };
        // A spent preemption budget pins the schedule to the running thread
        // until it blocks or finishes. Probe rounds are exempt: a probe is
        // not a preemption, and pinning it would starve the other blocked
        // threads of their re-check.
        if !promoted {
            if let Some(bound) = self.preemption_bound {
                if s.preemptions >= bound {
                    if let Some(p) = s.prev {
                        if candidates.contains(&p) {
                            candidates = vec![p];
                        }
                    }
                }
            }
        }
        let pos = s.log.len();
        let chosen = if pos < s.forced.len() {
            let t = s.forced[pos];
            if t >= self.nthreads || s.status[t as usize] == ThreadState::Done {
                s.abort = Some(SchedAbort::Divergence(format!(
                    "forced schedule picks thread {t} at step {pos}, but it is not runnable"
                )));
                self.cv.notify_all();
                return;
            }
            s.status[t as usize] = ThreadState::Ready;
            t
        } else if promoted {
            // Rotate the probe across every blocked thread: one thread's
            // condition may hinge on another blocked thread being granted
            // first (a spin whose owner has since released), so declaring
            // deadlock is sound only after each thread re-checked
            // fruitlessly. Sticking with `prev` here would probe one
            // thread forever and report phantom deadlocks.
            candidates[(s.blocked_streak - 1) as usize % candidates.len()]
        } else if let Some(p) = s.prev.filter(|p| candidates.contains(p)) {
            p
        } else {
            candidates[0]
        };
        s.status[chosen as usize] = ThreadState::Ready;
        if let Some(p) = s.prev {
            if chosen != p && s.status[p as usize] == ThreadState::Ready {
                s.preemptions += 1;
            }
        }
        if s.log.len() as u64 >= self.max_steps {
            s.abort = Some(SchedAbort::StepBound(format!(
                "starvation/livelock: schedule exceeded the {}-step bound",
                self.max_steps
            )));
            self.cv.notify_all();
            return;
        }
        // Re-enabled blocked threads carry no real branch: record the grant
        // as forced so the explorer does not branch over spin polls.
        let candidates = if promoted { vec![chosen] } else { candidates };
        s.log.push(Decision {
            chosen,
            candidates,
            promoted,
            fp: Footprint::new(),
            end_point: None,
        });
        s.open[chosen as usize] = Some(s.log.len() - 1);
        s.current = Some(chosen);
        self.cv.notify_all();
    }

    fn wait_for_grant(&self, mut s: std::sync::MutexGuard<'_, SchedState>, tid: u32) {
        loop {
            if let Some(a) = &s.abort {
                let msg = format!("{ABORT_PANIC_PREFIX}: {}", a.message());
                drop(s);
                // Unwind through the engine; the executor's worker-panic
                // recovery rolls the transaction back and the explorer reads
                // the structured verdict from the controller.
                std::panic::panic_any(msg);
            }
            if s.current == Some(tid) {
                return;
            }
            s = self.cv.wait(s).unwrap();
        }
    }
}

/// Per-thread coop hook handle (see [`Controller::hooks`]).
pub struct ControllerHooks {
    ctrl: Arc<Controller>,
    tid: u32,
}

impl CoopHooks for ControllerHooks {
    fn pause(&self, point: CoopPoint) {
        self.ctrl.pause(self.tid, point);
    }
    fn access(&self, line: u64, write: bool) {
        self.ctrl.access(self.tid, line, write);
    }
}

/// Marks a thread done on drop (see [`Controller::finish_guard`]).
pub struct FinishGuard {
    ctrl: Arc<Controller>,
    tid: u32,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.ctrl.finish(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_threads(ctrl: &Arc<Controller>, bodies: Vec<Box<dyn FnOnce() + Send>>) {
        std::thread::scope(|scope| {
            for (tid, body) in bodies.into_iter().enumerate() {
                let ctrl = Arc::clone(ctrl);
                scope.spawn(move || {
                    let tid = tid as u32;
                    let hooks = ctrl.hooks(tid);
                    let _g = htm_core::coop::install(hooks);
                    let _f = ctrl.finish_guard(tid);
                    ctrl.register(tid);
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                    // Swallow the abort panic: the test asserts on the
                    // structured verdict instead.
                    drop(r);
                });
            }
        });
    }

    #[test]
    fn serializes_two_threads_and_logs_footprints() {
        let ctrl = Controller::new(2, Vec::new(), 1000);
        let mk = |_tid: u32| {
            Box::new(move || {
                htm_core::coop::access(7, false);
                htm_core::coop::point(CoopPoint::BlockStart);
                htm_core::coop::access(7, true);
                htm_core::coop::point(CoopPoint::PreCommit);
            }) as Box<dyn FnOnce() + Send>
        };
        run_threads(&ctrl, vec![mk(0), mk(1)]);
        let (log, abort) = ctrl.take_result();
        assert!(abort.is_none(), "clean run: {abort:?}");
        // Each thread: preamble-to-BlockStart, BlockStart-to-PreCommit,
        // PreCommit-to-done = 3 steps.
        assert_eq!(log.len(), 6);
        let t0_writes: Vec<&Decision> =
            log.iter().filter(|d| d.chosen == 0 && d.fp.get(&7) == Some(&true)).collect();
        assert_eq!(t0_writes.len(), 1, "exactly one step carries thread 0's write");
        // Default policy without a forced prefix keeps running one thread to
        // completion before switching.
        assert_eq!(log.iter().map(|d| d.chosen).collect::<Vec<_>>(), vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn forced_prefix_steers_the_interleaving() {
        let ctrl = Controller::new(2, vec![0, 1, 0, 1, 0, 1], 1000);
        let mk = |_tid: u32| {
            Box::new(move || {
                htm_core::coop::point(CoopPoint::BlockStart);
                htm_core::coop::point(CoopPoint::PreCommit);
            }) as Box<dyn FnOnce() + Send>
        };
        run_threads(&ctrl, vec![mk(0), mk(1)]);
        let (log, abort) = ctrl.take_result();
        assert!(abort.is_none(), "clean run: {abort:?}");
        assert_eq!(log.iter().map(|d| d.chosen).collect::<Vec<_>>(), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn all_blocked_threads_is_reported_as_deadlock() {
        let ctrl = Controller::new(2, Vec::new(), 10_000);
        let mk = |_tid: u32| {
            Box::new(move || loop {
                htm_core::coop::point(CoopPoint::Blocked);
            }) as Box<dyn FnOnce() + Send>
        };
        run_threads(&ctrl, vec![mk(0), mk(1)]);
        let (_, abort) = ctrl.take_result();
        assert!(matches!(abort, Some(SchedAbort::Deadlock(_))), "got {abort:?}");
    }

    #[test]
    fn runaway_schedule_hits_the_step_bound() {
        let ctrl = Controller::new(1, Vec::new(), 64);
        let body = Box::new(move || loop {
            htm_core::coop::point(CoopPoint::BlockStart);
        }) as Box<dyn FnOnce() + Send>;
        run_threads(&ctrl, vec![body]);
        let (_, abort) = ctrl.take_result();
        assert!(matches!(abort, Some(SchedAbort::StepBound(_))), "got {abort:?}");
    }

    #[test]
    fn footprint_conflict_is_symmetric_and_write_sensitive() {
        let fp = |entries: &[(u64, bool)]| entries.iter().copied().collect::<Footprint>();
        let r7 = fp(&[(7, false)]);
        let w7 = fp(&[(7, true)]);
        let w9 = fp(&[(9, true)]);
        assert!(!conflicts(&r7, &r7), "read-read never conflicts");
        assert!(conflicts(&r7, &w7) && conflicts(&w7, &r7));
        assert!(conflicts(&w7, &w7));
        assert!(!conflicts(&w7, &w9), "distinct lines never conflict");
    }
}
