//! Micro-kernels for the model checker.
//!
//! A [`Kernel`] is a tiny multi-threaded program over a handful of shared
//! words: each thread runs a fixed sequence of atomic blocks, each block a
//! fixed sequence of [`Op`]s. Kernels are deliberately loop- and
//! branch-free so that every thread's behavior is a pure function of the
//! values it reads — which makes block-level serial executions well-defined
//! and lets the explorer compare any interleaved final state against the
//! set of serial ones.
//!
//! Variables are indices into a per-run address table; the harness places
//! each variable on its own 256-byte-aligned line so it occupies its own
//! conflict-detection line on every platform.

use htm_runtime::{ThreadCtx, Tx};

/// One straight-line operation inside an atomic block, over variable
/// indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read variable `a` (and discard the value — it still joins the read
    /// set, so it matters for conflicts and opacity).
    Read(usize),
    /// Store the constant `k` to variable `a`.
    Set(usize, u64),
    /// `a += k`.
    Add(usize, u64),
    /// `to = from + k` (reads one variable, writes another).
    Copy { from: usize, to: usize, k: u64 },
}

/// One atomic block: the ops run inside a single `ctx.atomic` body.
#[derive(Clone, Debug)]
pub struct Block(pub Vec<Op>);

/// One thread's program: its blocks run in order.
#[derive(Clone, Debug)]
pub struct ThreadProgram(pub Vec<Block>);

/// A named multi-threaded micro-program.
#[derive(Clone, Debug)]
pub struct Kernel {
    pub name: &'static str,
    /// Number of shared variables (indices `0..vars`).
    pub vars: usize,
    /// Initial value per variable (missing entries default to 0).
    pub init: Vec<u64>,
    pub threads: Vec<ThreadProgram>,
}

impl Kernel {
    pub fn nthreads(&self) -> u32 {
        self.threads.len() as u32
    }

    pub fn total_blocks(&self) -> usize {
        self.threads.iter().map(|t| t.0.len()).sum()
    }

    /// Initial value of variable `v`.
    pub fn init_of(&self, v: usize) -> u64 {
        self.init.get(v).copied().unwrap_or(0)
    }

    /// Runs thread `tid`'s whole program on `ctx` (all its blocks, in
    /// order).
    pub fn run_thread(&self, ctx: &mut ThreadCtx, tid: u32, addrs: &[htm_core::WordAddr]) {
        for block in &self.threads[tid as usize].0 {
            run_block(block, ctx, addrs);
        }
    }

    /// Runs one block (identified by `(tid, idx)`) — the building piece of
    /// serial reference executions.
    pub fn run_one_block(
        &self,
        ctx: &mut ThreadCtx,
        tid: u32,
        idx: usize,
        addrs: &[htm_core::WordAddr],
    ) {
        run_block(&self.threads[tid as usize].0[idx], ctx, addrs);
    }

    /// All interleavings of the threads' block sequences that preserve each
    /// thread's block order, as `(tid, block_idx)` sequences. This is the
    /// space of serial block-level executions any serializable run must
    /// match.
    pub fn serial_orders(&self) -> Vec<Vec<(u32, usize)>> {
        let counts: Vec<usize> = self.threads.iter().map(|t| t.0.len()).collect();
        let mut orders = Vec::new();
        let mut taken = vec![0usize; counts.len()];
        let mut cur: Vec<(u32, usize)> = Vec::new();
        fn rec(
            counts: &[usize],
            taken: &mut Vec<usize>,
            cur: &mut Vec<(u32, usize)>,
            orders: &mut Vec<Vec<(u32, usize)>>,
        ) {
            if cur.len() == counts.iter().sum::<usize>() {
                orders.push(cur.clone());
                return;
            }
            for t in 0..counts.len() {
                if taken[t] < counts[t] {
                    cur.push((t as u32, taken[t]));
                    taken[t] += 1;
                    rec(counts, taken, cur, orders);
                    taken[t] -= 1;
                    cur.pop();
                }
            }
        }
        rec(&counts, &mut taken, &mut cur, &mut orders);
        orders
    }
}

fn run_block(block: &Block, ctx: &mut ThreadCtx, addrs: &[htm_core::WordAddr]) {
    let ops = &block.0;
    ctx.atomic(|tx: &mut Tx<'_>| {
        for op in ops {
            match *op {
                Op::Read(a) => {
                    tx.load(addrs[a])?;
                }
                Op::Set(a, k) => tx.store(addrs[a], k)?,
                Op::Add(a, k) => {
                    let v = tx.load(addrs[a])?;
                    tx.store(addrs[a], v.wrapping_add(k))?;
                }
                Op::Copy { from, to, k } => {
                    let v = tx.load(addrs[from])?;
                    tx.store(addrs[to], v.wrapping_add(k))?;
                }
            }
        }
        Ok(())
    });
}

/// `counter`: both threads increment one shared counter (2 blocks and 1
/// block respectively — 3 blocks total, the exhaustiveness acceptance
/// kernel). Any lost update diverges from every serial final state.
pub fn counter() -> Kernel {
    Kernel {
        name: "counter",
        vars: 1,
        init: vec![0],
        threads: vec![
            ThreadProgram(vec![Block(vec![Op::Add(0, 1)]), Block(vec![Op::Add(0, 1)])]),
            ThreadProgram(vec![Block(vec![Op::Add(0, 1)])]),
        ],
    }
}

/// `snapshot`: thread 0 keeps the invariant `x == y` by updating both in
/// one block; thread 1 copies both into private result slots. A torn
/// observation (in a committed *or aborted* attempt) is an
/// opacity/serializability violation.
pub fn snapshot() -> Kernel {
    Kernel {
        name: "snapshot",
        vars: 4, // x, y, rx, ry
        init: vec![0, 0, 0, 0],
        threads: vec![
            ThreadProgram(vec![Block(vec![Op::Set(0, 7), Op::Set(1, 7)])]),
            ThreadProgram(vec![Block(vec![
                Op::Copy { from: 0, to: 2, k: 0 },
                Op::Copy { from: 1, to: 3, k: 0 },
            ])]),
        ],
    }
}

/// `chain`: thread 0 writes x then derives y from it; thread 1 reads y into
/// a result slot and bumps x. Exercises write-after-read and read-after-
/// write edges across three blocks per thread... (2 threads x 2-3 blocks).
pub fn chain() -> Kernel {
    Kernel {
        name: "chain",
        vars: 3, // x, y, r
        init: vec![1, 0, 0],
        threads: vec![
            ThreadProgram(vec![
                Block(vec![Op::Set(0, 5)]),
                Block(vec![Op::Copy { from: 0, to: 1, k: 1 }]),
            ]),
            ThreadProgram(vec![Block(vec![Op::Copy { from: 1, to: 2, k: 0 }, Op::Add(0, 10)])]),
        ],
    }
}

/// `dirty-read`: thread 0 writes y from x twice (forcing revalidation
/// traffic); thread 1 updates x, then copies y into a result slot — the
/// reader that surfaces never-committed values if a broken commit path
/// publishes early.
pub fn dirty_read() -> Kernel {
    Kernel {
        name: "dirty-read",
        vars: 3, // x, y, r
        init: vec![0, 0, 0],
        threads: vec![
            ThreadProgram(vec![Block(vec![Op::Read(0), Op::Set(1, 99)])]),
            ThreadProgram(vec![
                Block(vec![Op::Add(0, 1)]),
                Block(vec![Op::Copy { from: 1, to: 2, k: 0 }]),
            ]),
        ],
    }
}

/// The default model-checking suite.
pub fn suite() -> Vec<Kernel> {
    vec![counter(), snapshot(), chain(), dirty_read()]
}

/// Looks a suite kernel up by name (trace replay entry point).
pub fn by_name(name: &str) -> Option<Kernel> {
    suite().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_orders_are_the_multinomial_interleavings() {
        let k = counter(); // 2 + 1 blocks -> C(3,1) = 3 orders
        assert_eq!(k.serial_orders().len(), 3);
        let k = snapshot(); // 1 + 1 -> 2
        assert_eq!(k.serial_orders().len(), 2);
        let k = chain(); // 2 + 1 -> 3
        assert_eq!(k.serial_orders().len(), 3);
        for order in counter().serial_orders() {
            // Per-thread block order is preserved.
            let t0: Vec<usize> = order.iter().filter(|&&(t, _)| t == 0).map(|&(_, b)| b).collect();
            assert_eq!(t0, vec![0, 1]);
        }
    }

    #[test]
    fn suite_kernels_are_well_formed_and_uniquely_named() {
        let s = suite();
        let mut names: Vec<&str> = s.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len(), "duplicate kernel names");
        for k in &s {
            assert!(k.nthreads() >= 2, "{}: model kernels are concurrent", k.name);
            assert!(k.total_blocks() >= 2);
            for t in &k.threads {
                for b in &t.0 {
                    for op in &b.0 {
                        let vars = match *op {
                            Op::Read(a) | Op::Set(a, _) | Op::Add(a, _) => vec![a],
                            Op::Copy { from, to, .. } => vec![from, to],
                        };
                        assert!(vars.into_iter().all(|v| v < k.vars), "{}: var oob", k.name);
                    }
                }
            }
        }
        assert!(by_name("counter").is_some());
        assert!(by_name("nope").is_none());
    }
}
