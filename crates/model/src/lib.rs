//! `htm-model` — systematic concurrency model checking for the HTM
//! simulator.
//!
//! Simulation runs and the STAMP ports exercise *statistically likely*
//! interleavings; this crate exercises *all* of them (at atomic-block
//! scheduling-point granularity) for small kernels. It drives the **real**
//! TM engine — the same `TxMemory` conflict protocol, `ThreadCtx` retry
//! ladder, and commit paths every experiment uses — through a cooperative
//! scheduler built on the `htm_core::coop` hook layer, so a model-checking
//! verdict is a statement about the engine that runs the figures, not
//! about a parallel re-implementation.
//!
//! The pieces:
//!
//! * [`sched`] — the [`Controller`](sched::Controller): one-runnable-thread
//!   cooperative scheduling with forced-prefix replay, per-step access
//!   footprints, and deadlock/starvation verdicts;
//! * [`kernel`] — loop-free multi-threaded micro-programs (2–3 threads,
//!   2–4 blocks) plus the default suite;
//! * [`explore`] — the schedule enumerator: naive full branching, DPOR
//!   (sleep sets + conflict-driven backtrack sets), and bounded-preemption
//!   modes, with serializability / opacity / serial-equivalence /
//!   deadlock checking on every schedule;
//! * [`trace`] — replayable `htm-model-trace v1` counterexamples.
//!
//! The stock engine passes every kernel in the suite on all platforms and
//! tiers; the three seeded regression bugs (reader-doom skip, epoch-bump
//! skip, early ROT publish) are each caught with a minimal counterexample.

pub mod explore;
pub mod kernel;
pub mod sched;
pub mod trace;

pub use explore::{
    diagram, explore, replay_forced, serial_digests, Counterexample, ExploreReport, Mode,
    ModelConfig, SeededBug, Tier, ViolationClass, ALL_TIERS,
};
pub use kernel::{Kernel, Op};
pub use sched::{conflicts, Controller, Decision, Footprint, SchedAbort};
pub use trace::ModelTrace;
