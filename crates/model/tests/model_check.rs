//! End-to-end model-checker acceptance tests: stock-engine cleanliness
//! across the full tier ladder, the seeded-bug regression corpus, DPOR
//! soundness against naive enumeration, and deterministic counterexample
//! replay.

use htm_machine::Platform;
use htm_model::{
    explore, kernel, Mode, ModelConfig, ModelTrace, SeededBug, Tier, ViolationClass, ALL_TIERS,
};

/// The acceptance kernel: 2 threads, 3 atomic blocks total, explored
/// exhaustively under every tier of the fallback ladder. The stock engine
/// must come out clean everywhere.
#[test]
fn stock_counter_kernel_is_clean_under_all_five_tiers() {
    for tier in ALL_TIERS {
        let platform = match tier {
            // ROT needs POWER8; run the rest on Intel Core (zEC12 and
            // Blue Gene/Q are covered by the cross-platform smoke below).
            Tier::Rot => Platform::Power8,
            _ => Platform::IntelCore,
        };
        let cfg = ModelConfig::new(kernel::counter(), platform, tier);
        let r = explore(&cfg);
        assert!(!r.truncated, "{tier:?}: exploration must be exhaustive");
        assert!(r.schedules > 1, "{tier:?}: must branch ({} schedules)", r.schedules);
        assert!(r.ok(), "{tier:?}: stock engine must be clean, found:\n{r}");
        // Every completed schedule must land in a serial final state; for
        // commuting increments that is exactly one digest.
        assert_eq!(r.digests.len(), 1, "{tier:?}: all schedules reach the serial sum");
    }
}

/// Regression: the dirty-read kernel drives one thread into an
/// irrevocable spin on a line whose hardware owner is mid-commit. The
/// scheduler's deadlock prober used to re-probe only the last-run thread,
/// so the spinner — whose condition had long since cleared — was never
/// granted and every tier reported a phantom deadlock. The stock engine
/// must come out clean on the whole suite, not just the two easy kernels.
#[test]
fn stock_chain_and_dirty_read_kernels_are_clean() {
    for k in [kernel::chain, kernel::dirty_read] {
        for tier in ALL_TIERS {
            let platform = match tier {
                Tier::Rot => Platform::Power8,
                _ => Platform::IntelCore,
            };
            let cfg = ModelConfig::new(k(), platform, tier);
            let r = explore(&cfg);
            assert!(!r.truncated, "{}/{tier:?}: exploration must be exhaustive", cfg.kernel.name);
            assert!(
                r.ok(),
                "{}/{tier:?}: stock engine must be clean, found:\n{r}",
                cfg.kernel.name
            );
        }
    }
}

#[test]
fn stock_snapshot_kernel_is_clean_on_every_platform() {
    for platform in [Platform::BlueGeneQ, Platform::Zec12, Platform::IntelCore, Platform::Power8] {
        let cfg = ModelConfig::new(kernel::snapshot(), platform, Tier::Stm);
        let r = explore(&cfg);
        assert!(!r.truncated, "{platform:?}: exploration must be exhaustive");
        assert!(r.ok(), "{platform:?}: stock engine must be opaque, found:\n{r}");
    }
}

#[test]
fn seeded_reader_doom_skip_is_caught_as_lost_update() {
    let cfg = ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw)
        .bug(SeededBug::SkipReaderDoom);
    let r = explore(&cfg);
    assert!(
        r.has(ViolationClass::Certify) || r.has(ViolationClass::NonSerializable),
        "reader-doom skip must surface as a lost update:\n{r}"
    );
    let cx = &r.counterexamples[0];
    assert!(!cx.schedule.is_empty() && !cx.diagram.is_empty());
}

#[test]
fn seeded_epoch_bump_skip_is_caught_by_the_opacity_checker() {
    let cfg = ModelConfig::new(kernel::snapshot(), Platform::IntelCore, Tier::Stm)
        .bug(SeededBug::SkipEpochBump);
    let r = explore(&cfg);
    assert!(
        r.has(ViolationClass::Opacity),
        "epoch-bump skip must produce a torn (non-opaque) snapshot:\n{r}"
    );
}

#[test]
fn seeded_early_rot_publish_is_caught() {
    let cfg = ModelConfig::new(kernel::dirty_read(), Platform::Power8, Tier::Rot)
        .bug(SeededBug::EarlyRotPublish);
    let r = explore(&cfg);
    assert!(!r.ok(), "pre-validation publish must leak dirty values to some schedule:\n{r}");
}

/// DPOR soundness: pruned exploration must find the same violation classes
/// and the same set of reachable final states as the naive enumeration,
/// while (on conflict-light kernels) actually pruning.
#[test]
fn dpor_matches_naive_enumeration() {
    for (kern, bug) in [
        (kernel::snapshot(), SeededBug::None),
        (kernel::chain(), SeededBug::None),
        (kernel::counter(), SeededBug::SkipReaderDoom),
    ] {
        let name = kern.name;
        let naive = explore(
            &ModelConfig::new(kern.clone(), Platform::IntelCore, Tier::Hw)
                .bug(bug)
                .mode(Mode::Naive),
        );
        let dpor = explore(
            &ModelConfig::new(kern, Platform::IntelCore, Tier::Hw).bug(bug).mode(Mode::Dpor),
        );
        assert!(!naive.truncated && !dpor.truncated, "{name}: both must be exhaustive");
        let classes = |r: &htm_model::ExploreReport| {
            let mut c: Vec<&str> = r.counterexamples.iter().map(|x| x.class.key()).collect();
            c.sort_unstable();
            c
        };
        assert_eq!(
            classes(&naive),
            classes(&dpor),
            "{name}: violation classes must agree\nnaive:\n{naive}\ndpor:\n{dpor}"
        );
        assert_eq!(naive.digests, dpor.digests, "{name}: reachable final states must agree");
        assert!(
            dpor.schedules <= naive.schedules,
            "{name}: DPOR must not explore more than naive ({} vs {})",
            dpor.schedules,
            naive.schedules
        );
    }
}

#[test]
fn bounded_preemption_explores_a_subset() {
    let full = explore(
        &ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw).mode(Mode::Naive),
    );
    let bounded = explore(
        &ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw)
            .mode(Mode::BoundedPreemption(1)),
    );
    assert!(!bounded.truncated);
    assert!(bounded.ok());
    assert!(
        bounded.schedules < full.schedules,
        "a 1-preemption bound must shrink the space ({} vs {})",
        bounded.schedules,
        full.schedules
    );
    assert!(bounded.digests.is_subset(&full.digests));
}

/// Counterexamples replay deterministically through the saved trace.
#[test]
fn counterexample_replays_from_a_round_tripped_trace() {
    let cfg = ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw)
        .bug(SeededBug::SkipReaderDoom);
    let r = explore(&cfg);
    assert!(!r.ok(), "need a counterexample to replay:\n{r}");
    let cx = &r.counterexamples[0];
    let trace = ModelTrace::from_counterexample(&cfg, cx);
    let parsed = ModelTrace::from_text(&trace.to_text()).expect("trace text round-trips");
    assert_eq!(parsed, trace);
    for _ in 0..3 {
        parsed.replay().expect("the recorded schedule must reproduce the violation");
    }
}

/// The replay must notice when the violation does *not* reproduce (stock
/// engine + a schedule recorded against a seeded bug).
#[test]
fn replay_reports_divergence_when_the_bug_is_absent() {
    let cfg = ModelConfig::new(kernel::counter(), Platform::IntelCore, Tier::Hw)
        .bug(SeededBug::SkipReaderDoom);
    let r = explore(&cfg);
    let cx = &r.counterexamples[0];
    let mut trace = ModelTrace::from_counterexample(&cfg, cx);
    trace.bug = SeededBug::None;
    assert!(trace.replay().is_err(), "stock engine must not reproduce the seeded violation");
}
