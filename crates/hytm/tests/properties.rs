//! Property tests for the hybrid-TM subsystem (DESIGN.md §8).
//!
//! Three properties over random inputs:
//!
//! 1. **Snapshot validation ≡ atomic snapshot** — `SoftLog::validate`
//!    passes exactly when the current memory agrees with every logged
//!    first value, and pinpoints the first divergent address otherwise.
//! 2. **No lost updates under fault storms** — random fault plans with the
//!    STM (and, on POWER8, ROT) fallback tier never lose a counter
//!    increment: hardware, software, and irrevocable commits interleave on
//!    the same hot words and the final values are exact.
//! 3. **Hardware/software coexistence** — a software commit whose
//!    write-back overlaps a live hardware transaction's read set must
//!    doom that hardware transaction (the subscription protocol); if it
//!    did not, the mixed workload below would lose updates.

use std::collections::HashMap;

use htm_core::WordAddr;
use htm_hytm::adapt::{AdaptSignal, AdaptiveController, Tier, BACKOFF_CAP, OBSERVATION_WINDOW};
use htm_hytm::{FallbackPolicy, SoftLog};
use htm_machine::Platform;
use htm_runtime::{FaultPlan, RetryPolicy, Sim, SimConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Property 1: SoftLog validation is exactly the atomic-snapshot check.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After arbitrary re-reads and arbitrary later writes, `validate`
    /// succeeds iff no logged address changed, and otherwise reports the
    /// first logged address whose current value diverges.
    #[test]
    fn validation_is_equivalent_to_an_atomic_snapshot(
        initial in proptest::collection::vec(0u64..16, 1..24),
        reads in proptest::collection::vec(0usize..24, 0..48),
        writes in proptest::collection::vec((0usize..24, 0u64..16), 0..24),
    ) {
        let mut mem: Vec<u64> = initial;
        let n = mem.len();
        let addr = |i: usize| WordAddr((i % n) as u32 * 8);

        // Record first values, exactly as instrumented STM loads do.
        let mut log = SoftLog::new();
        for &r in &reads {
            let a = addr(r);
            let first = log.record(a, mem[(a.0 / 8) as usize]);
            // Every later read of the same address keeps observing the
            // logged first value (the NOrec read rule).
            prop_assert_eq!(log.get(a), Some(first));
        }

        // Concurrent writers move memory underneath the log.
        for &(w, v) in &writes {
            mem[(addr(w).0 / 8) as usize] = v;
        }

        // The oracle: compare logged entries against current memory in
        // first-read order.
        let expected = log
            .entries()
            .iter()
            .find(|&&(a, v)| mem[(a.0 / 8) as usize] != v)
            .map(|&(a, _)| a);
        prop_assert_eq!(log.validate(|a| mem[(a.0 / 8) as usize]), expected);
    }

    /// A log is a function of the *first* read per address: re-recording
    /// never changes it, so validation is insensitive to duplicate reads.
    #[test]
    fn duplicate_reads_never_change_the_snapshot(
        pairs in proptest::collection::vec((0u32..16, 0u64..100), 1..32),
    ) {
        let mut log = SoftLog::new();
        let mut first: HashMap<u32, u64> = HashMap::new();
        for &(slot, v) in &pairs {
            let got = log.record(WordAddr(slot * 8), v);
            let want = *first.entry(slot).or_insert(v);
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(log.len(), first.len());
        // Validation against the first values passes regardless of what
        // the duplicate reads tried to record.
        prop_assert_eq!(log.validate(|a| first[&(a.0 / 8)]), None);
    }
}

// ---------------------------------------------------------------------------
// Property 2: no lost updates under seeded fault storms.
// ---------------------------------------------------------------------------

fn storm(seed: u64, tb: f64, cb: f64, delay: u64) -> FaultPlan {
    FaultPlan::none()
        .seed(seed)
        .transient_abort_per_begin(tb * 0.8)
        .capacity_abort_per_begin(cb * 0.6)
        .lock_release_delay(delay)
}

fn run_storm(platform: Platform, fallback: FallbackPolicy, plan: FaultPlan) {
    let sim = Sim::new(
        SimConfig::new(platform.config()).mem_words(1 << 18).fallback(fallback).faults(plan),
    );
    let counters = sim.alloc().alloc_aligned(8, 64);
    let stats = sim.run_parallel(4, RetryPolicy::uniform(1), move |ctx| {
        let t = ctx.thread_id() as u64;
        for i in 0..200u64 {
            ctx.atomic(|tx| {
                let a = counters.offset(((i * 3 + t) % 8) as u32);
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    let total: u64 = (0..8).map(|i| sim.read_word(counters.offset(i))).sum();
    assert_eq!(total, 4 * 200, "{platform} {fallback}: lost updates under fault storm");
    assert_eq!(stats.committed_blocks(), 4 * 200, "{platform} {fallback}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random fault storms on random platforms: the STM tier keeps every
    /// increment.
    #[test]
    fn stm_fallback_loses_no_updates_under_fault_storms(
        platform_idx in 0u8..4,
        seed in any::<u64>(),
        tb in 0.0..1.0f64,
        cb in 0.0..1.0f64,
        delay in 0u64..1500,
    ) {
        let platform = Platform::ALL[platform_idx as usize % Platform::ALL.len()];
        run_storm(platform, FallbackPolicy::Stm, storm(seed, tb, cb, delay));
    }

    /// The same storms through the ROT tier (degrading to the lock away
    /// from POWER8) are equally exact.
    #[test]
    fn rot_fallback_loses_no_updates_under_fault_storms(
        platform_idx in 0u8..4,
        seed in any::<u64>(),
        tb in 0.0..1.0f64,
        cb in 0.0..1.0f64,
        delay in 0u64..1500,
    ) {
        let platform = Platform::ALL[platform_idx as usize % Platform::ALL.len()];
        run_storm(platform, FallbackPolicy::Rot, storm(seed, tb, cb, delay));
    }

    /// The same storms under the adaptive contention manager: whatever
    /// mix of tiers the controller walks through (including POWER8
    /// capacity spilling), every increment survives.
    #[test]
    fn adaptive_fallback_loses_no_updates_under_fault_storms(
        platform_idx in 0u8..4,
        seed in any::<u64>(),
        tb in 0.0..1.0f64,
        cb in 0.0..1.0f64,
        delay in 0u64..1500,
    ) {
        let platform = Platform::ALL[platform_idx as usize % Platform::ALL.len()];
        run_storm(platform, FallbackPolicy::Adaptive, storm(seed, tb, cb, delay));
    }
}

// ---------------------------------------------------------------------------
// Adaptive-controller invariants (DESIGN.md §9).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hysteresis: under arbitrary observation streams the controller
    /// changes tier at most once per observation window, and never picks
    /// a tier the platform lacks.
    #[test]
    fn controller_never_flips_more_than_once_per_window(
        has_rot in any::<bool>(),
        has_spill in any::<bool>(),
        blocks in proptest::collection::vec(0u8..12, 16..384),
    ) {
        let signals = [
            AdaptSignal::Conflict,
            AdaptSignal::Capacity,
            AdaptSignal::LockPressure,
            AdaptSignal::Fault,
        ];
        let mut c = AdaptiveController::new(has_rot, has_spill);
        let mut last_switches = 0;
        for (w, window) in blocks.chunks(OBSERVATION_WINDOW as usize).enumerate() {
            for &obs in window {
                // 0-2 aborts per block, with the signal and the fallback
                // bit drawn from the same byte: an adversarial but
                // deterministic mix.
                for k in 0..(obs % 3) {
                    c.observe_abort(signals[((obs / 3 + k) % 4) as usize]);
                }
                c.block_done(obs & 1 == 1);
            }
            let s = c.tier_switches();
            prop_assert!(s - last_switches <= 1, "window {w} flipped more than once");
            last_switches = s;
            let tier = c.block_tier();
            prop_assert!(has_rot || tier != Tier::Rot, "picked ROT without rollback-only");
            prop_assert!(has_spill || tier != Tier::Spill, "picked Spill without suspend/resume");
        }
    }

    /// The backoff ceiling never exceeds its hard cap, for any attempt
    /// depth and watchdog escalation, and is monotone in the attempt.
    #[test]
    fn backoff_ceiling_stays_within_its_cap(
        attempt in 0u32..10_000,
        trip_shift in 0u32..64,
    ) {
        let b = AdaptiveController::backoff_ceiling(attempt, trip_shift);
        prop_assert!(b > 0);
        prop_assert!(b <= BACKOFF_CAP);
        prop_assert!(b <= AdaptiveController::backoff_ceiling(attempt + 1, trip_shift));
    }
}

// ---------------------------------------------------------------------------
// Property 3: software commits doom overlapping live hardware readers.
// ---------------------------------------------------------------------------

/// Hardware and software transactions increment the *same* hot word. A
/// hardware transaction that read the word before a software commit
/// wrote it back must abort (value-based subscription); if it committed
/// anyway, its stale read would erase the software increment. Exactness
/// of the final count is therefore a direct witness of the
/// hardware-subscription abort.
#[test]
fn software_commits_doom_overlapping_live_hardware_readers() {
    for (platform, fallback) in [
        (Platform::IntelCore, FallbackPolicy::Stm),
        (Platform::Zec12, FallbackPolicy::Stm),
        (Platform::BlueGeneQ, FallbackPolicy::Stm),
        (Platform::Power8, FallbackPolicy::Stm),
        (Platform::Power8, FallbackPolicy::Rot),
    ] {
        // A 70% per-begin abort storm keeps both tiers active: ~30% of
        // blocks commit in hardware while the rest drain through the
        // software tier, all contending on one word.
        let plan = FaultPlan::none().seed(7).transient_abort_per_begin(0.7);
        let sim = Sim::new(
            SimConfig::new(platform.config()).mem_words(1 << 18).fallback(fallback).faults(plan),
        );
        let a = sim.alloc().alloc(1);
        let stats = sim.run_parallel(4, RetryPolicy::uniform(0), move |ctx| {
            for _ in 0..400 {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        let soft = match fallback {
            FallbackPolicy::Rot => stats.rot_commits(),
            _ => stats.stm_commits(),
        };
        assert!(stats.hw_commits() > 0, "{platform} {fallback}: hardware tier never committed");
        assert!(soft > 0, "{platform} {fallback}: software tier never committed");
        assert_eq!(
            sim.read_word(a),
            4 * 400,
            "{platform} {fallback}: a hardware transaction survived an overlapping software \
             commit and erased its update"
        );
    }
}
