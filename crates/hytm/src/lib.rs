//! # htm-hytm — hybrid-TM fallback policies for the retry mechanism
//!
//! Nakaike et al.'s common retry mechanism (Figure 1) falls back to a
//! single global lock once its retry counters are exhausted, serializing
//! every fallback execution. This crate provides the building blocks for
//! two *concurrent* fallback tiers, selected per run through
//! [`FallbackPolicy`]:
//!
//! * **`Stm`** — a NOrec-style software transaction ("No Ownership
//!   Records", Dalessandro et al., PPoPP 2010): reads are invisible and
//!   value-logged in a [`SoftLog`], writes are buffered privately, and the
//!   commit revalidates the whole read log under a brief hold of the global
//!   sequence lock before writing back. Hardware transactions coexist with
//!   software commits through the existing lock *subscription*: the lock
//!   word doubles as the NOrec global sequence number (its acquisition
//!   counter advances on every software commit), so a software commit dooms
//!   every subscribed hardware transaction — the HW side of a HW/SW
//!   conflict always aborts, matching the two-counter hybrid NOrec schemes.
//! * **`Rot`** — a POWER8 rollback-only transaction used as a
//!   capacity-stretching intermediate tier: loads are untracked by the
//!   TMCAM (writes-only capacity), so the runtime value-logs them in a
//!   [`SoftLog`] and revalidates at commit under the same sequence lock,
//!   restoring the serializability the hardware no longer guarantees.
//!
//! The execution machinery itself lives in `htm-runtime` (the engine owns
//! the write buffer, cycle accounting, certification and record/replay);
//! this crate holds the policy type, the read-log/validation core both
//! tiers share, and the tuning constants, so it depends only on
//! `htm-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;

use std::collections::HashMap;
use std::fmt;

use htm_core::WordAddr;

/// What the retry mechanism falls back to when its retry counters are
/// exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FallbackPolicy {
    /// The paper's irrevocable global-lock fallback (the default).
    #[default]
    Lock,
    /// NOrec-style software transactions: concurrent instrumented
    /// execution, value-based validation, commit under the sequence lock.
    Stm,
    /// POWER8 rollback-only transactions with software read validation; on
    /// platforms without rollback-only support this degrades to [`Lock`].
    Rot,
    /// The `htm-adapt` online contention manager: every block picks its
    /// own tier (hardware → capacity-spilled hardware → rollback-only →
    /// software → lock) from live abort-cause feedback, with hysteresis,
    /// capped randomized backoff and a hard starvation bound (see
    /// [`adapt::AdaptiveController`]).
    Adaptive,
}

impl FallbackPolicy {
    /// The *static* policies, in CLI/report order. [`Adaptive`] is
    /// deliberately excluded: the static grid (specs, golden files, lint
    /// cells) iterates this array, and the adaptive policy gets its own
    /// spec comparing against every member.
    ///
    /// [`Adaptive`]: FallbackPolicy::Adaptive
    pub const ALL: [FallbackPolicy; 3] =
        [FallbackPolicy::Lock, FallbackPolicy::Stm, FallbackPolicy::Rot];

    /// Short stable key used in cache keys, TSV columns and CLI flags.
    pub fn key(self) -> &'static str {
        match self {
            FallbackPolicy::Lock => "lock",
            FallbackPolicy::Stm => "stm",
            FallbackPolicy::Rot => "rot",
            FallbackPolicy::Adaptive => "adaptive",
        }
    }

    /// Parses a CLI spelling (the inverse of [`FallbackPolicy::key`]).
    pub fn parse(s: &str) -> Option<FallbackPolicy> {
        match s {
            "lock" => Some(FallbackPolicy::Lock),
            "stm" => Some(FallbackPolicy::Stm),
            "rot" => Some(FallbackPolicy::Rot),
            "adaptive" => Some(FallbackPolicy::Adaptive),
            _ => None,
        }
    }

    /// Whether runs under this policy can commit blocks through a software
    /// validation tier (STM, ROT or the adaptive ladder), and therefore
    /// need the hybrid write epoch installed for consistent software
    /// snapshots.
    pub fn uses_software_commits(self) -> bool {
        !matches!(self, FallbackPolicy::Lock)
    }
}

impl fmt::Display for FallbackPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Simulated-cycle costs of the software fallback tiers.
///
/// The STM numbers follow the instrumentation overheads reported for
/// NOrec-class systems (a handful of instructions per barrier, a
/// per-location compare on validation); they are deliberately coarse — the
/// experiment compares fallback *policies* under one consistent model, not
/// absolute STM performance.
pub mod cost {
    /// Setting up a software transaction (checkpoint + log reset).
    pub const STM_BEGIN: u64 = 20;
    /// Per-load instrumentation on top of the plain load cost.
    pub const STM_LOAD_EXTRA: u64 = 6;
    /// Per-store instrumentation (write-map insert) on top of the store.
    pub const STM_STORE_EXTRA: u64 = 10;
    /// Re-checking one logged location during validation.
    pub const STM_VALIDATE_PER_WORD: u64 = 2;
    /// Fixed commit overhead (lock handshake + write-back setup).
    pub const STM_COMMIT_OVERHEAD: u64 = 60;
    /// Extra commit work for a rollback-only transaction (its stores are
    /// already in hardware; only the read log is revalidated in software).
    pub const ROT_COMMIT_OVERHEAD: u64 = 30;
}

/// How many times a software transaction retries after a failed commit
/// validation before escalating to the irrevocable global-lock path.
pub const STM_COMMIT_RETRIES: u32 = 8;
/// How many times the rollback-only tier retries (hardware aborts and
/// validation failures combined) before falling through to the next tier.
pub const ROT_RETRIES: u32 = 4;
/// A software transaction revalidates its whole read log every this many
/// reads (and whenever the sequence lock's acquisition counter moved),
/// bounding how long it can run on a stale snapshot (opacity).
pub const REVALIDATE_PERIOD: u32 = 64;
/// Upper bound on instrumented accesses per software attempt; past it the
/// attempt fails validation and the retry machine escalates. Keeps a
/// pathological body from growing an unbounded log.
pub const STM_MAX_ACCESSES: u32 = 1 << 20;

/// Value-based read log: the NOrec read set.
///
/// Records the *first* value observed per address (later reads of the same
/// address are served consistently by the caller: either from the write
/// map or from memory, revalidated here). [`SoftLog::validate`] re-reads
/// every logged address through the caller's closure and succeeds only if
/// all values still match — equivalent to having read an atomic snapshot.
#[derive(Debug, Default)]
pub struct SoftLog {
    entries: Vec<(WordAddr, u64)>,
    index: HashMap<WordAddr, u64>,
}

impl SoftLog {
    /// Creates an empty log.
    pub fn new() -> SoftLog {
        SoftLog::default()
    }

    /// Clears the log for a new attempt (keeps allocations).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }

    /// Records the first observed value at `addr`; returns the value every
    /// later read of `addr` must keep observing (the logged first value).
    pub fn record(&mut self, addr: WordAddr, value: u64) -> u64 {
        match self.index.entry(addr) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
                self.entries.push((addr, value));
                value
            }
        }
    }

    /// The logged value at `addr`, if the address was ever read.
    pub fn get(&self, addr: WordAddr) -> Option<u64> {
        self.index.get(&addr).copied()
    }

    /// Number of distinct addresses logged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The logged `(address, first value)` pairs, in first-read order.
    pub fn entries(&self) -> &[(WordAddr, u64)] {
        &self.entries
    }

    /// Re-reads every logged address through `read` and checks the value
    /// still matches; returns the first mismatching address, or `None` if
    /// the log is consistent (an atomic snapshot).
    pub fn validate(&self, mut read: impl FnMut(WordAddr) -> u64) -> Option<WordAddr> {
        self.entries.iter().find(|&&(addr, v)| read(addr) != v).map(|&(addr, _)| addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_keys_round_trip() {
        for p in FallbackPolicy::ALL {
            assert_eq!(FallbackPolicy::parse(p.key()), Some(p));
            assert_eq!(p.to_string(), p.key());
        }
        assert_eq!(FallbackPolicy::parse("hle"), None);
        assert_eq!(FallbackPolicy::default(), FallbackPolicy::Lock);
    }

    #[test]
    fn adaptive_key_round_trips_but_stays_off_the_static_grid() {
        let a = FallbackPolicy::Adaptive;
        assert_eq!(FallbackPolicy::parse(a.key()), Some(a));
        assert_eq!(a.to_string(), "adaptive");
        assert!(!FallbackPolicy::ALL.contains(&a), "static grid must not grow");
        assert!(a.uses_software_commits());
        assert!(!FallbackPolicy::Lock.uses_software_commits());
        assert!(FallbackPolicy::Stm.uses_software_commits());
        assert!(FallbackPolicy::Rot.uses_software_commits());
    }

    #[test]
    fn soft_log_dedupes_first_values() {
        let mut log = SoftLog::new();
        assert_eq!(log.record(WordAddr(8), 5), 5);
        assert_eq!(log.record(WordAddr(8), 9), 5, "first value wins");
        assert_eq!(log.record(WordAddr(16), 7), 7);
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries(), &[(WordAddr(8), 5), (WordAddr(16), 7)]);
        assert_eq!(log.get(WordAddr(8)), Some(5));
        assert_eq!(log.get(WordAddr(24)), None);
    }

    #[test]
    fn validation_finds_the_changed_address() {
        let mut log = SoftLog::new();
        log.record(WordAddr(1), 10);
        log.record(WordAddr(2), 20);
        assert_eq!(log.validate(|a| if a == WordAddr(1) { 10 } else { 20 }), None);
        assert_eq!(
            log.validate(|a| if a == WordAddr(2) { 99 } else { 10 }),
            Some(WordAddr(2)),
            "mismatch at the changed address"
        );
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut log = SoftLog::new();
        log.record(WordAddr(1), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.record(WordAddr(1), 2), 2, "stale entries are gone");
    }
}
