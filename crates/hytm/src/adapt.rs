//! `htm-adapt` — the per-block online contention manager.
//!
//! The paper's central finding is that no single fallback tier wins
//! everywhere: the best policy depends on platform, thread count and
//! workload phase. [`AdaptiveController`] therefore picks the execution
//! tier *per block* from live abort-cause feedback, moving along the
//! ladder
//!
//! ```text
//!   Hw  →  Spill (POWER8)  →  Rot (POWER8)  →  Stm  →  Lock
//! ```
//!
//! where `Spill` is capacity-stretched hardware execution (overflow
//! entries past the TMCAM spill into a software-validated side log, after
//! "Stretching the capacity of HTM in IBM POWER architectures").
//!
//! Three properties are load-bearing for the robustness stack:
//!
//! * **Hysteresis** — tier decisions happen only at observation-window
//!   boundaries (every [`OBSERVATION_WINDOW`] completed blocks) and each
//!   boundary changes the tier at most once, so the controller can never
//!   oscillate faster than once per window *by construction*.
//! * **Capped backoff** — the randomized exponential backoff ceiling
//!   [`AdaptiveController::backoff_ceiling`] is monotone in the attempt
//!   number and hard-capped at [`BACKOFF_CAP`] simulated cycles, so a
//!   deep retry tail cannot park a thread for unbounded time.
//! * **Starvation bound** — the controller never blocks commits itself:
//!   when the runtime watchdog trips ([`AdaptiveController::starvation_rescue`])
//!   the tier is forced to `Lock` for the next window, so every block
//!   commits within the watchdog's starvation bound even under
//!   adversarial fault plans.
//!
//! The controller is deterministic: its state is a pure function of the
//! observation sequence, it draws no randomness itself (backoff draws
//! come from the runtime's scheduling RNG and are recorded), and replay
//! never consults it — recorded block outcomes already carry the tier
//! each block committed on.

use htm_core::AbortCategory;

/// Number of completed blocks per observation window. Tier decisions are
/// made only at window boundaries.
pub const OBSERVATION_WINDOW: u32 = 16;

/// Consecutive clean windows required before probing one tier back up.
pub const PROMOTE_CLEAN_WINDOWS: u32 = 2;

/// Base of the randomized exponential backoff (simulated cycles).
pub const BACKOFF_BASE: u64 = 32;

/// Largest left-shift the backoff ceiling ever applies to the base.
pub const BACKOFF_MAX_SHIFT: u32 = 8;

/// Hard cap on the backoff ceiling: no pause, however deep the retry
/// tail or the watchdog escalation, exceeds this many simulated cycles.
pub const BACKOFF_CAP: u64 = BACKOFF_BASE << BACKOFF_MAX_SHIFT;

/// An execution tier the controller can choose for a block, from full
/// hardware down to the irrevocable global lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Plain hardware transaction (the fast path).
    Hw,
    /// Capacity-stretched hardware: overflowing footprint entries spill
    /// into a software-validated side log (POWER8 only).
    Spill,
    /// Rollback-only transaction with software read validation (POWER8
    /// only).
    Rot,
    /// NOrec-style software transaction.
    Stm,
    /// Irrevocable execution under the global lock.
    Lock,
}

impl Tier {
    /// Short stable key for traces, logs and telemetry.
    pub fn key(self) -> &'static str {
        match self {
            Tier::Hw => "hw",
            Tier::Spill => "spill",
            Tier::Rot => "rot",
            Tier::Stm => "stm",
            Tier::Lock => "lock",
        }
    }
}

/// What a single abort tells the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptSignal {
    /// Data conflict with another transaction: back off, and under
    /// sustained pressure demote past the hardware-conflict tiers.
    Conflict,
    /// Footprint overflow: demote toward the capacity-stretched and
    /// software tiers, which is where extra capacity lives.
    Capacity,
    /// Aborted by the fallback lock (subscription or commit-time
    /// acquisition): the lock is hot, joining it is the stable choice.
    LockPressure,
    /// Transient/spurious abort (injected fault, restriction, ...):
    /// backoff handles it; only sustained storms demote.
    Fault,
}

impl AdaptSignal {
    /// Maps the runtime's abort classification onto a controller signal.
    pub fn from_category(cat: AbortCategory) -> AdaptSignal {
        match cat {
            AbortCategory::Capacity => AdaptSignal::Capacity,
            AbortCategory::DataConflict => AdaptSignal::Conflict,
            AbortCategory::LockConflict => AdaptSignal::LockPressure,
            AbortCategory::Other | AbortCategory::Unclassified => AdaptSignal::Fault,
        }
    }
}

/// Per-thread online contention manager. See the module docs for the
/// invariants; see `htm-runtime`'s `ThreadCtx` for the wiring.
#[derive(Debug)]
pub struct AdaptiveController {
    tier: Tier,
    has_rot: bool,
    has_spill: bool,
    /// Blocks completed in the current window.
    blocks: u32,
    /// Blocks that failed to commit on the selected tier and drained
    /// through their escape hatch (hardware tiers → software fallback,
    /// STM → irrevocable).
    fallbacks: u32,
    /// Abort observations in the current window, by signal.
    conflict: u32,
    capacity: u32,
    lock_pressure: u32,
    fault: u32,
    /// Consecutive clean windows (promotion probation).
    clean_windows: u32,
    /// Lifetime number of tier changes (exported as `tier_switches`).
    switches: u64,
}

impl AdaptiveController {
    /// A controller for a platform with the given optional tiers
    /// (`has_rot`: rollback-only transactions; `has_spill`:
    /// suspend/resume-based capacity spilling). Starts optimistically in
    /// full hardware.
    pub fn new(has_rot: bool, has_spill: bool) -> AdaptiveController {
        AdaptiveController {
            tier: Tier::Hw,
            has_rot,
            has_spill,
            blocks: 0,
            fallbacks: 0,
            conflict: 0,
            capacity: 0,
            lock_pressure: 0,
            fault: 0,
            clean_windows: 0,
            switches: 0,
        }
    }

    /// The tier the next block should start on.
    pub fn block_tier(&self) -> Tier {
        self.tier
    }

    /// Lifetime number of tier changes.
    pub fn tier_switches(&self) -> u64 {
        self.switches
    }

    /// Records one abort observation for the current window.
    pub fn observe_abort(&mut self, signal: AdaptSignal) {
        match signal {
            AdaptSignal::Conflict => self.conflict += 1,
            AdaptSignal::Capacity => self.capacity += 1,
            AdaptSignal::LockPressure => self.lock_pressure += 1,
            AdaptSignal::Fault => self.fault += 1,
        }
    }

    /// Records the completion of one block. `fell_back` says the block
    /// could not commit on the selected tier and drained through its
    /// escape hatch (a hardware-tier block that exhausted its retries and
    /// committed in software, or an STM block that went irrevocable) —
    /// the direct signal that the selected tier is not paying for itself.
    /// At window boundaries this evaluates the window and may change the
    /// tier — at most once.
    pub fn block_done(&mut self, fell_back: bool) {
        self.blocks += 1;
        if fell_back {
            self.fallbacks += 1;
        }
        if self.blocks >= OBSERVATION_WINDOW {
            self.evaluate();
        }
    }

    /// Watchdog trip: the current block starved past the starvation
    /// bound. Force the lock tier for (at least) the next window so the
    /// degraded irrevocable blocks drain the storm, and restart the
    /// probation clock.
    pub fn starvation_rescue(&mut self) {
        if self.tier != Tier::Lock {
            self.tier = Tier::Lock;
            self.switches += 1;
        }
        self.reset_window();
        self.clean_windows = 0;
    }

    /// The randomized-backoff ceiling (exclusive upper bound on the pause
    /// drawn from the scheduling RNG) for a given attempt number and
    /// watchdog escalation shift. Monotone in `attempt`, hard-capped at
    /// [`BACKOFF_CAP`].
    pub fn backoff_ceiling(attempt: u32, trip_shift: u32) -> u64 {
        let shift = attempt.saturating_add(trip_shift).min(BACKOFF_MAX_SHIFT);
        (BACKOFF_BASE << shift).min(BACKOFF_CAP)
    }

    fn aborts(&self) -> u32 {
        self.conflict + self.capacity + self.lock_pressure + self.fault
    }

    fn reset_window(&mut self) {
        self.blocks = 0;
        self.fallbacks = 0;
        self.conflict = 0;
        self.capacity = 0;
        self.lock_pressure = 0;
        self.fault = 0;
    }

    /// Window-boundary decision: at most one tier change.
    ///
    /// Demotion keys on *wasted work*, not raw abort counts: a hardware
    /// tier demotes only when a majority of the window's blocks exhausted
    /// their retries and drained through the software escape hatch —
    /// aborts that retries absorb are the paper's normal operating mode
    /// and must not chase the controller off the fast path. The STM tier
    /// demotes when validation failures average one per block (its commits
    /// are already software; the escape hatch is irrevocability).
    fn evaluate(&mut self) {
        let blocks = self.blocks;
        let aborts = self.aborts();
        let before = self.tier;
        let struggling = match self.tier {
            Tier::Hw | Tier::Spill => self.fallbacks * 2 >= blocks,
            _ => aborts >= blocks,
        };
        if struggling {
            self.clean_windows = 0;
            self.tier = self.demoted();
        } else if aborts * 4 <= blocks && self.fallbacks * 4 <= blocks {
            // Clean window: after enough of them in a row, probe one tier
            // back up (probation keeps a single quiet window from
            // flapping the tier).
            self.clean_windows += 1;
            if self.clean_windows >= PROMOTE_CLEAN_WINDOWS {
                self.tier = self.promoted();
                self.clean_windows = 0;
            }
        } else {
            self.clean_windows = 0;
        }
        if self.tier != before {
            self.switches += 1;
        }
        self.reset_window();
    }

    /// One rung down the available ladder, steered by the dominant abort
    /// cause of the closing window.
    fn demoted(&self) -> Tier {
        if self.lock_pressure > self.conflict + self.capacity + self.fault {
            // The lock is already the bottleneck: fighting it from any
            // speculative tier only reruns doomed work.
            return Tier::Lock;
        }
        let capacity_bound = self.capacity >= self.conflict.max(self.fault);
        // Spurious aborts hit *every* tier that begins a hardware
        // transaction, so a fault-dominant window jumps straight to STM —
        // the one concurrent tier with no hardware begin to kill.
        let fault_bound = self.fault >= self.conflict && self.fault >= self.capacity;
        match self.tier {
            Tier::Hw => {
                if capacity_bound && self.has_spill {
                    // Capacity-doomed blocks keep most of their hardware
                    // footprint and spill only the overflow.
                    Tier::Spill
                } else if !fault_bound && self.has_rot {
                    Tier::Rot
                } else {
                    Tier::Stm
                }
            }
            // Spill shares the hardware conflict detector, so sustained
            // pressure of any kind moves past it.
            Tier::Spill => {
                if self.has_rot && !capacity_bound && !fault_bound {
                    Tier::Rot
                } else {
                    Tier::Stm
                }
            }
            Tier::Rot => Tier::Stm,
            Tier::Stm => Tier::Lock,
            Tier::Lock => Tier::Lock,
        }
    }

    /// One rung back up the available ladder.
    fn promoted(&self) -> Tier {
        match self.tier {
            Tier::Lock => Tier::Stm,
            Tier::Stm => {
                if self.has_rot {
                    Tier::Rot
                } else if self.has_spill {
                    Tier::Spill
                } else {
                    Tier::Hw
                }
            }
            Tier::Rot => {
                if self.has_spill {
                    Tier::Spill
                } else {
                    Tier::Hw
                }
            }
            Tier::Spill | Tier::Hw => Tier::Hw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_window(
        c: &mut AdaptiveController,
        aborts_per_block: u32,
        signal: AdaptSignal,
        fell_back: bool,
    ) {
        for _ in 0..OBSERVATION_WINDOW {
            for _ in 0..aborts_per_block {
                c.observe_abort(signal);
            }
            c.block_done(fell_back);
        }
    }

    #[test]
    fn starts_in_hardware_and_demotes_on_conflict_storms() {
        let mut c = AdaptiveController::new(true, true);
        assert_eq!(c.block_tier(), Tier::Hw);
        finish_window(&mut c, 2, AdaptSignal::Conflict, true);
        assert_eq!(c.block_tier(), Tier::Rot, "conflicts skip the spill tier");
        assert_eq!(c.tier_switches(), 1);
    }

    #[test]
    fn absorbed_aborts_never_chase_the_controller_off_the_fast_path() {
        // Plenty of aborts, but every block still commits in hardware
        // within its retry budget: the fast path is paying, hold it.
        let mut c = AdaptiveController::new(true, true);
        for _ in 0..8 {
            finish_window(&mut c, 3, AdaptSignal::Conflict, false);
        }
        assert_eq!(c.block_tier(), Tier::Hw);
        assert_eq!(c.tier_switches(), 0);
    }

    #[test]
    fn fault_storms_jump_to_the_begin_free_software_tier() {
        // Spurious aborts kill every tier that begins a hardware
        // transaction; the controller must not waste windows on ROT.
        let mut c = AdaptiveController::new(true, true);
        finish_window(&mut c, 2, AdaptSignal::Fault, true);
        assert_eq!(c.block_tier(), Tier::Stm);
        assert_eq!(c.tier_switches(), 1);
    }

    #[test]
    fn capacity_storms_prefer_the_spill_tier_when_available() {
        let mut c = AdaptiveController::new(true, true);
        finish_window(&mut c, 2, AdaptSignal::Capacity, true);
        assert_eq!(c.block_tier(), Tier::Spill);
        let mut no_spill = AdaptiveController::new(true, false);
        finish_window(&mut no_spill, 2, AdaptSignal::Capacity, true);
        assert_eq!(no_spill.block_tier(), Tier::Rot);
        let mut neither = AdaptiveController::new(false, false);
        finish_window(&mut neither, 2, AdaptSignal::Capacity, true);
        assert_eq!(neither.block_tier(), Tier::Stm);
    }

    #[test]
    fn lock_pressure_jumps_straight_to_the_lock() {
        let mut c = AdaptiveController::new(true, true);
        finish_window(&mut c, 3, AdaptSignal::LockPressure, true);
        assert_eq!(c.block_tier(), Tier::Lock);
        assert_eq!(c.tier_switches(), 1, "a jump is still one switch");
    }

    #[test]
    fn promotion_requires_consecutive_clean_windows() {
        let mut c = AdaptiveController::new(true, true);
        finish_window(&mut c, 2, AdaptSignal::Conflict, true); // Hw -> Rot
        assert_eq!(c.block_tier(), Tier::Rot);
        finish_window(&mut c, 0, AdaptSignal::Fault, false);
        assert_eq!(c.block_tier(), Tier::Rot, "one clean window is probation");
        finish_window(&mut c, 0, AdaptSignal::Fault, false);
        assert_eq!(c.block_tier(), Tier::Spill, "second clean window promotes");
        finish_window(&mut c, 0, AdaptSignal::Fault, false);
        finish_window(&mut c, 0, AdaptSignal::Fault, false);
        assert_eq!(c.block_tier(), Tier::Hw);
    }

    #[test]
    fn middling_windows_hold_the_tier_and_reset_probation() {
        let mut c = AdaptiveController::new(false, false);
        finish_window(&mut c, 2, AdaptSignal::Conflict, true); // Hw -> Stm
        assert_eq!(c.block_tier(), Tier::Stm);
        finish_window(&mut c, 0, AdaptSignal::Fault, false); // clean #1
                                                             // A window with some aborts (rate between the thresholds: 8
                                                             // aborts over 16 blocks) neither demotes nor counts as clean.
        for i in 0..OBSERVATION_WINDOW {
            if i % 2 == 0 {
                c.observe_abort(AdaptSignal::Conflict);
            }
            c.block_done(false);
        }
        assert_eq!(c.block_tier(), Tier::Stm);
        finish_window(&mut c, 0, AdaptSignal::Fault, false); // clean #1 again
        assert_eq!(c.block_tier(), Tier::Stm, "probation restarted");
    }

    #[test]
    fn starvation_rescue_forces_the_lock_tier() {
        let mut c = AdaptiveController::new(true, true);
        c.starvation_rescue();
        assert_eq!(c.block_tier(), Tier::Lock);
        assert_eq!(c.tier_switches(), 1);
        c.starvation_rescue();
        assert_eq!(c.tier_switches(), 1, "already at the lock: no new switch");
    }

    #[test]
    fn backoff_ceiling_is_monotone_and_capped() {
        let mut prev = 0;
        for attempt in 0..64 {
            for trip in 0..8 {
                let b = AdaptiveController::backoff_ceiling(attempt, trip);
                assert!(b <= BACKOFF_CAP, "ceiling above cap at {attempt}/{trip}");
                if trip == 0 {
                    assert!(b >= prev, "ceiling not monotone in attempt");
                    if trip == 0 && attempt > 0 {
                        prev = b;
                    }
                }
            }
        }
        assert_eq!(AdaptiveController::backoff_ceiling(100, 100), BACKOFF_CAP);
        assert_eq!(AdaptiveController::backoff_ceiling(0, 0), BACKOFF_BASE);
    }

    #[test]
    fn at_most_one_switch_per_window_boundary() {
        // Feed an adversarial mix; count switches per window and assert
        // the hysteresis bound.
        let mut c = AdaptiveController::new(true, true);
        let signals = [
            AdaptSignal::Conflict,
            AdaptSignal::Capacity,
            AdaptSignal::LockPressure,
            AdaptSignal::Fault,
        ];
        let mut last_switches = 0;
        for w in 0..64u32 {
            for b in 0..OBSERVATION_WINDOW {
                let n = (w + b) % 4;
                for k in 0..n {
                    c.observe_abort(signals[((w ^ b ^ k) % 4) as usize]);
                }
                c.block_done((w ^ b) & 1 == 1);
            }
            let s = c.tier_switches();
            assert!(s - last_switches <= 1, "window {w} flipped more than once");
            last_switches = s;
        }
    }
}
