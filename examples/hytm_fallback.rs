//! Hybrid-TM fallback tiers: the same abort-heavy workload with retry
//! exhaustion handled by the irrevocable global lock, a NOrec-style STM,
//! and POWER8 rollback-only transactions (DESIGN.md §8).
//!
//! A 60% per-begin transient-abort storm pushes most blocks past their
//! retry budget, so nearly everything lands in the fallback tier — which
//! is exactly where the three policies differ: the lock serializes,
//! while STM and ROT commits overlap with each other and with the
//! hardware transactions that do survive.
//!
//! ```sh
//! cargo run --release --example hytm_fallback
//! ```

use htm_compare::machine::Platform;
use htm_compare::runtime::{FallbackPolicy, FaultPlan, RetryPolicy, Sim, SimConfig};

fn main() {
    let storm = FaultPlan::none().seed(42).transient_abort_per_begin(0.6);
    println!("An abort storm on POWER8, drained through each fallback tier:\n");
    println!(
        "{:<10} {:>10} {:>6} {:>6} {:>6} {:>6} {:>9}",
        "fallback", "cycles", "hw", "irrev", "stm", "rot", "vaborts"
    );

    for fallback in FallbackPolicy::ALL {
        let sim = Sim::new(
            SimConfig::new(Platform::Power8.config())
                .mem_words(1 << 18)
                .seed(0xF0)
                .faults(storm)
                .fallback(fallback),
        );
        // Eight counters on one conflict-detection line: contended, but
        // every increment must survive whichever tier commits it.
        let counters = sim.alloc().alloc_aligned(8, 64);
        let stats = sim.run_parallel(4, RetryPolicy::uniform(1), move |ctx| {
            let t = ctx.thread_id() as u64;
            for i in 0..2000u64 {
                ctx.atomic(|tx| {
                    let a = counters.offset(((i * 3 + t) % 8) as u32);
                    let v = tx.load(a)?;
                    tx.tick(20);
                    tx.store(a, v + 1)
                });
            }
        });

        let total: u64 = (0..8).map(|i| sim.read_word(counters.offset(i))).sum();
        assert_eq!(total, 4 * 2000, "no tier may lose an update");
        println!(
            "{:<10} {:>10} {:>6} {:>6} {:>6} {:>6} {:>9}",
            fallback.to_string(),
            stats.cycles(),
            stats.hw_commits(),
            stats.irrevocable_commits(),
            stats.stm_commits(),
            stats.rot_commits(),
            stats.stm_validation_aborts(),
        );
    }

    println!(
        "\nEvery tier committed all 8000 increments; the software tiers just\n\
         spend fewer cycles doing it, because their fallback commits overlap.\n\
         (`rot` only engages on POWER8 — elsewhere it degrades to `lock`.)"
    );
}
