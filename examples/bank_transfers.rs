//! Bank-transfer demo: concurrent transfers between accounts with full
//! conservation checking, showing conflict-detection granularity at work —
//! the same workload conflicts more on zEC12's 256-byte lines than on
//! Intel's 64-byte lines when accounts are packed tightly.
//!
//! ```sh
//! cargo run --release --example bank_transfers
//! ```

use htm_compare::machine::Platform;
use htm_compare::runtime::{RetryPolicy, Sim};
use rand::{Rng, SeedableRng};

const ACCOUNTS: u32 = 256;
const INITIAL: u64 = 1000;
const TRANSFERS: u32 = 4000;

fn run(platform: Platform, aligned: bool) -> (f64, f64) {
    let sim = Sim::of(platform.config());
    let gran = sim.machine().config().granularity.max(64);
    // Packed: one word per account (several accounts share a line).
    // Aligned: one line per account.
    let accounts: Vec<_> = if aligned {
        (0..ACCOUNTS).map(|_| sim.alloc().alloc_aligned(1, gran)).collect()
    } else {
        let base = sim.alloc().alloc(ACCOUNTS);
        (0..ACCOUNTS).map(|i| base.offset(i)).collect()
    };
    for a in &accounts {
        sim.write_word(*a, INITIAL);
    }
    let accounts = std::sync::Arc::new(accounts);
    let acc = std::sync::Arc::clone(&accounts);
    let stats = sim.run_parallel(4, RetryPolicy::default(), move |ctx| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7 + ctx.thread_id() as u64);
        for _ in 0..TRANSFERS / 4 {
            let from = rng.gen_range(0..ACCOUNTS) as usize;
            let to = rng.gen_range(0..ACCOUNTS) as usize;
            if from == to {
                continue;
            }
            let amount = rng.gen_range(1..50);
            ctx.atomic(|tx| {
                let balance = tx.load(acc[from])?;
                if balance >= amount {
                    tx.store(acc[from], balance - amount)?;
                    let t = tx.load(acc[to])?;
                    tx.store(acc[to], t + amount)?;
                }
                Ok(())
            });
        }
    });
    let total: u64 = accounts.iter().map(|a| sim.read_word(*a)).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL, "money conservation violated!");
    (stats.abort_ratio() * 100.0, stats.serialization_ratio() * 100.0)
}

fn main() {
    println!("Concurrent bank transfers (4 threads, {ACCOUNTS} accounts):\n");
    println!("{:<20} {:>18} {:>18}", "platform", "packed abort%", "aligned abort%");
    for platform in Platform::ALL {
        let (packed, _) = run(platform, false);
        let (aligned, _) = run(platform, true);
        println!("{:<20} {:>17.1}% {:>17.1}%", platform.to_string(), packed, aligned);
    }
    println!("\nPacked accounts share conflict-detection lines: the coarser the");
    println!("granularity (zEC12: 256 B), the more false conflicts — the paper's");
    println!("kmeans alignment fix in miniature. All runs conserved every coin.");
}
