//! Run a miniature STAMP benchmark (vacation-high) on all four platforms,
//! in both the original and the paper's modified variant.
//!
//! ```sh
//! cargo run --release --example stamp_mini
//! ```

use htm_compare::machine::Platform;
use htm_compare::stamp::{run_bench, BenchId, BenchParams, Scale, Variant};

fn main() {
    println!("vacation-high at Tiny scale, 4 threads:\n");
    println!("{:<20} {:>10} {:>10}", "platform", "original", "modified");
    for platform in Platform::ALL {
        let machine = platform.config();
        let params = BenchParams { threads: 4, scale: Scale::Tiny, ..Default::default() };
        let orig = run_bench(BenchId::VacationHigh, Variant::Original, &machine, &params);
        let modi = run_bench(BenchId::VacationHigh, Variant::Modified, &machine, &params);
        println!(
            "{:<20} {:>9.2}x {:>9.2}x",
            platform.to_string(),
            orig.speedup(),
            modi.speedup()
        );
    }
    println!("\nEvery run is verified: table rows satisfy avail + reserved == total.");
}
