//! POWER8 thread-level speculation with suspend/resume (Section 6.3): an
//! ordered loop parallelized with transactions, with and without escaping
//! the transaction to spin on the commit-order variable.
//!
//! ```sh
//! cargo run --release --example tls_speculation
//! ```

use htm_compare::apps::{TlsKernel, TlsLoop};
use htm_compare::machine::Platform;
use htm_compare::runtime::Sim;

fn main() {
    for kernel in [TlsKernel::Milc, TlsKernel::Sphinx] {
        println!("TLS kernel {kernel} on POWER8 (512 iterations):");
        let sim = Sim::of(Platform::Power8.config());
        let l = TlsLoop::create(&sim, kernel, 512);
        let (seq, seq_sum) = l.run_sequential(&sim);
        for use_suspend in [false, true] {
            print!("  {:<25}", if use_suspend { "with suspend/resume:" } else { "without suspend/resume:" });
            for t in [2u32, 4, 6] {
                let sim2 = Sim::of(Platform::Power8.config());
                let l2 = TlsLoop::create(&sim2, kernel, 512);
                let (cycles, sum, aborts) = l2.run_tls(&sim2, t, use_suspend);
                assert_eq!(sum, seq_sum, "speculation must preserve semantics");
                print!("  {t}T {:.2}x ({:.0}% aborts)", seq as f64 / cycles as f64, aborts * 100.0);
            }
            println!();
        }
        println!();
    }
    println!("Suspending to wait for commit order avoids the data conflicts on");
    println!("the ordering variable — the paper measured 69% -> 0.1% aborts.");
}
