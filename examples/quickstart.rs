//! Quickstart: run the same transactional counter workload on all four
//! modelled HTM systems and compare their behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use htm_compare::machine::Platform;
use htm_compare::runtime::{RetryPolicy, Sim};

fn main() {
    println!("A contended 8-counter workload on the four HTM systems:\n");
    for platform in Platform::ALL {
        let sim = Sim::of(platform.config());
        // Eight counters, each on its own conflict-detection line.
        let gran = sim.machine().config().granularity.max(64);
        let counters = sim.alloc().alloc_aligned(8 * gran / 8, gran);
        let stride = gran / 8;

        let seq = sim.run_sequential(|ctx| {
            for i in 0..8000u32 {
                ctx.atomic(|tx| {
                    let a = counters.offset((i % 8) * stride);
                    let v = tx.load(a)?;
                    tx.tick(40); // pretend to compute something
                    tx.store(a, v + 1)
                });
            }
        });

        let sim = Sim::of(platform.config());
        let counters = sim.alloc().alloc_aligned(8 * gran / 8, gran);
        let stats = sim.run_parallel(4, RetryPolicy::default(), |ctx| {
            let tid = ctx.thread_id();
            for i in 0..2000u32 {
                ctx.atomic(|tx| {
                    let a = counters.offset(((i + tid * 3) % 8) * stride);
                    let v = tx.load(a)?;
                    tx.tick(40);
                    tx.store(a, v + 1)
                });
            }
        });

        let total: u64 = (0..8).map(|i| sim.read_word(counters.offset(i * stride))).sum();
        assert_eq!(total, 8000, "transactions must not lose updates");
        println!(
            "{:<20} speed-up {:.2}x  aborts {:>5.1}%  serialized {:>4.1}%",
            platform.to_string(),
            seq as f64 / stats.cycles() as f64,
            stats.abort_ratio() * 100.0,
            stats.serialization_ratio() * 100.0,
        );
    }
    println!("\nAll four systems committed every update; they differ only in cost.");
}
