//! zEC12 constrained transactions on a concurrent queue (the paper's
//! Section 6.1 experiment in miniature): lock-free vs no-retry TM vs
//! tuned-retry TM vs constrained TM.
//!
//! ```sh
//! cargo run --release --example constrained_queue
//! ```

use htm_compare::apps::{run_queue_bench, QueueImpl};
use htm_compare::machine::Platform;
use htm_compare::runtime::Sim;

fn main() {
    println!("Alternating enqueue/dequeue on zEC12, relative to lock-free:\n");
    for threads in [1u32, 2, 4, 8] {
        let sim = Sim::of(Platform::Zec12.config());
        let base = run_queue_bench(&sim, QueueImpl::LockFree, threads, 1000);
        print!("{threads:>2} threads: ");
        for imp in [
            QueueImpl::NoRetryTm,
            QueueImpl::OptRetryTm { retries: 6 },
            QueueImpl::ConstrainedTm,
        ] {
            let sim = Sim::of(Platform::Zec12.config());
            let r = run_queue_bench(&sim, imp, threads, 1000);
            print!("{imp} {:.2}x  ", r.cycles as f64 / base.cycles as f64);
        }
        println!();
    }
    println!("\n(values < 1 are faster than the lock-free baseline — constrained");
    println!("transactions need no abort handler, no fallback lock and no tuning.)");
}
