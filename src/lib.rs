//! # htm-compare — reproduction of the ISCA 2015 four-way HTM comparison
//!
//! Umbrella crate re-exporting the whole workspace: the simulation substrate
//! ([`core`]), the four platform models ([`machine`]), the transaction
//! engine and retry mechanism ([`runtime`]), the hybrid-TM fallback tiers
//! ([`hytm`]), transactional data structures ([`structs`]), the STAMP
//! benchmark port ([`stamp`]) and the processor-specific feature
//! applications ([`apps`]).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory and experiment index.
//!
//! ```
//! use htm_compare::machine::Platform;
//!
//! // The four systems compared by the paper.
//! for p in Platform::ALL {
//!     println!("{p}");
//! }
//! ```

pub use htm_apps as apps;
pub use htm_core as core;
pub use htm_hytm as hytm;
pub use htm_machine as machine;
pub use htm_runtime as runtime;
pub use stamp;
pub use tm_structs as structs;
