#!/usr/bin/env bash
# Regenerates every table/figure of the paper at --scale sim through the
# htm-exp experiment engine (parallel cells + result cache; pass --no-cache
# to force recomputation). Text output lands in target/figout/, TSV data in
# target/results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p target/figout
cargo build --release -p htm-exp
for s in table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10_11 \
         prefetch_ablation ablation_policy ablation_tmcam \
         ablation_subscription ablation_retry ablation_zec12_other; do
  echo "== $s"
  ./target/release/htm-exp run "$s" "$@" > "target/figout/$s.txt"
done
echo "All figures regenerated under target/figout/."
