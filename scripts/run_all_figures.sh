#!/usr/bin/env bash
# Regenerates every table/figure of the paper at --scale sim.
# Text output lands in target/figout/, TSV data in target/results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p target/figout
for b in table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10_11 \
         prefetch_ablation ablation_policy ablation_tmcam \
         ablation_subscription ablation_retry ablation_zec12_other; do
  echo "== $b"
  cargo run --release -p htm-bench --bin "$b" -- "$@" > "target/figout/$b.txt"
done
echo "All figures regenerated under target/figout/."
