//! Property-based tests: transactional data structures against std-library
//! models, and engine invariants, driven by proptest.

use htm_compare::machine::Platform;
use htm_compare::runtime::Sim;
use htm_compare::structs::{TmHashTable, TmHeap, TmList, TmRbTree};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Put(u64, u64),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0u64..64).prop_map(MapOp::Remove),
            (0u64..64).prop_map(MapOp::Get),
            (0u64..64, any::<u64>()).prop_map(|(k, v)| MapOp::Put(k, v)),
        ],
        1..120,
    )
}

fn check_against_model(ops: &[MapOp], use_tree: bool) {
    let sim = Sim::of(Platform::IntelCore.config());
    let mut ctx = sim.seq_ctx();
    let mut model = std::collections::BTreeMap::new();
    if use_tree {
        let t = ctx.atomic(|tx| TmRbTree::create(tx));
        for op in ops {
            ctx.atomic(|tx| match *op {
                MapOp::Insert(k, v) => {
                    let inserted = t.insert(tx, k, v)?;
                    assert_eq!(inserted, !model.contains_key(&k));
                    if inserted {
                        model.insert(k, v);
                    }
                    Ok(())
                }
                MapOp::Remove(k) => {
                    assert_eq!(t.remove(tx, k)?, model.remove(&k));
                    Ok(())
                }
                MapOp::Get(k) => {
                    assert_eq!(t.get(tx, k)?, model.get(&k).copied());
                    Ok(())
                }
                MapOp::Put(k, v) => {
                    assert_eq!(t.put(tx, k, v)?, model.insert(k, v));
                    Ok(())
                }
            });
        }
        ctx.atomic(|tx| {
            t.validate(tx)?;
            assert_eq!(t.len(tx)?, model.len() as u64);
            let mut expect = model.iter();
            t.for_each(tx, |k, v| {
                assert_eq!(Some((&k, &v)), expect.next().map(|(a, b)| (a, b)));
                Ok(())
            })
        });
    } else {
        let t = ctx.atomic(|tx| TmHashTable::create(tx, 8));
        for op in ops {
            ctx.atomic(|tx| match *op {
                MapOp::Insert(k, v) => {
                    let inserted = t.insert(tx, k, v)?;
                    assert_eq!(inserted, !model.contains_key(&k));
                    if inserted {
                        model.insert(k, v);
                    }
                    Ok(())
                }
                MapOp::Remove(k) => {
                    assert_eq!(t.remove(tx, k)?, model.remove(&k));
                    Ok(())
                }
                MapOp::Get(k) => {
                    assert_eq!(t.get(tx, k)?, model.get(&k).copied());
                    Ok(())
                }
                MapOp::Put(k, v) => {
                    assert_eq!(t.put(tx, k, v)?, model.insert(k, v));
                    Ok(())
                }
            });
        }
        ctx.atomic(|tx| {
            assert_eq!(t.len(tx)?, model.len() as u64);
            Ok(())
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rbtree_matches_btreemap(ops in map_ops()) {
        check_against_model(&ops, true);
    }

    #[test]
    fn hashtable_matches_btreemap(ops in map_ops()) {
        check_against_model(&ops, false);
    }

    #[test]
    fn sorted_list_matches_model(ops in map_ops()) {
        let sim = Sim::of(Platform::Zec12.config());
        let mut ctx = sim.seq_ctx();
        let list = ctx.atomic(|tx| TmList::create(tx));
        let mut model = std::collections::BTreeMap::new();
        for op in &ops {
            ctx.atomic(|tx| match *op {
                MapOp::Insert(k, v) => {
                    let ins = list.insert(tx, k, v)?;
                    assert_eq!(ins, !model.contains_key(&k));
                    if ins { model.insert(k, v); }
                    Ok(())
                }
                MapOp::Remove(k) => { assert_eq!(list.remove(tx, k)?, model.remove(&k)); Ok(()) }
                MapOp::Get(k) => { assert_eq!(list.get(tx, k)?, model.get(&k).copied()); Ok(()) }
                MapOp::Put(k, v) => { assert_eq!(list.put(tx, k, v)?, model.insert(k, v)); Ok(()) }
            });
        }
        // Order and contents match.
        let mut expect: Vec<_> = model.into_iter().collect();
        expect.reverse();
        ctx.atomic(|tx| {
            list.for_each(tx, |k, v| {
                assert_eq!(expect.pop(), Some((k, v)));
                Ok(())
            })
        });
        prop_assert!(expect.is_empty());
    }

    #[test]
    fn heap_matches_binary_heap(prios in prop::collection::vec(0u64..1000, 1..80)) {
        let sim = Sim::of(Platform::Power8.config());
        let mut ctx = sim.seq_ctx();
        let h = ctx.atomic(|tx| TmHeap::create(tx, 128));
        let mut model = std::collections::BinaryHeap::new();
        for (i, &p) in prios.iter().enumerate() {
            ctx.atomic(|tx| h.push(tx, p, i as u64).map(|ok| assert!(ok)));
            model.push(p);
        }
        while let Some(expect) = model.pop() {
            let got = ctx.atomic(|tx| h.pop(tx));
            prop_assert_eq!(got.map(|(p, _)| p), Some(expect));
        }
        prop_assert_eq!(ctx.atomic(|tx| h.pop(tx)), None);
    }

    #[test]
    fn concurrent_counter_never_loses_updates(
        threads in 1u32..5,
        per_thread in 1u64..200,
        retries in 0u32..6,
    ) {
        let sim = Sim::of(Platform::IntelCore.config());
        let a = sim.alloc().alloc(1);
        sim.run_parallel(threads, htm_compare::runtime::RetryPolicy::uniform(retries), |ctx| {
            for _ in 0..per_thread {
                ctx.atomic(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)
                });
            }
        });
        prop_assert_eq!(sim.read_word(a), threads as u64 * per_thread);
    }
}
