//! Concurrency-safety integration tests: serializability and opacity of
//! the transaction engine under adversarial contention, on every platform
//! model and conflict policy.

use htm_compare::core::ConflictPolicy;
use htm_compare::machine::Platform;
use htm_compare::runtime::{RetryPolicy, Sim, SimConfig};

/// Concurrent random transfers between packed accounts must conserve the
/// total on every platform (torn transactions would break it).
#[test]
fn money_conservation_under_heavy_contention() {
    for platform in Platform::ALL {
        let sim = Sim::of(platform.config());
        let n = 16u32;
        let base = sim.alloc().alloc(n);
        for i in 0..n {
            sim.write_word(base.offset(i), 100);
        }
        sim.run_parallel(4, RetryPolicy::default(), |ctx| {
            let tid = ctx.thread_id() as u64;
            for i in 0..400u64 {
                let from = ((i * 7 + tid) % n as u64) as u32;
                let to = ((i * 13 + tid * 5) % n as u64) as u32;
                if from == to {
                    continue;
                }
                ctx.atomic(|tx| {
                    let f = tx.load(base.offset(from))?;
                    if f > 0 {
                        tx.store(base.offset(from), f - 1)?;
                        let t = tx.load(base.offset(to))?;
                        tx.store(base.offset(to), t + 1)?;
                    }
                    Ok(())
                });
            }
        });
        let total: u64 = (0..n).map(|i| sim.read_word(base.offset(i))).sum();
        assert_eq!(total, n as u64 * 100, "{platform}: money not conserved");
    }
}

/// Same property under requester-loses resolution (the ablation policy).
#[test]
fn conservation_under_requester_loses() {
    let sim = Sim::new(
        SimConfig::new(Platform::IntelCore.config())
            .mem_words(1 << 18)
            .conflict_policy(ConflictPolicy::RequesterLoses),
    );
    let a = sim.alloc().alloc(1);
    sim.run_parallel(4, RetryPolicy::default(), |ctx| {
        for _ in 0..500 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(sim.read_word(a), 2000);
}

/// Opacity: within one transaction, two reads of an invariant pair must
/// always be consistent, even while writers update both concurrently.
/// A zombie transaction observing a torn pair would trip the assert.
#[test]
fn paired_invariant_never_observed_torn() {
    for platform in Platform::ALL {
        let sim = Sim::of(platform.config());
        let gran = sim.machine().config().granularity.max(64);
        // x and y on different lines; invariant: x + y == 1000.
        let x = sim.alloc().alloc_aligned(1, gran);
        let y = sim.alloc().alloc_aligned(1, gran);
        sim.write_word(x, 400);
        sim.write_word(y, 600);
        sim.run_parallel(4, RetryPolicy::default(), |ctx| {
            let tid = ctx.thread_id();
            for i in 0..300u64 {
                if tid % 2 == 0 {
                    // Writers move value between x and y.
                    ctx.atomic(|tx| {
                        let xv = tx.load(x)?;
                        let delta = (i % 5) + 1;
                        if xv >= delta {
                            tx.store(x, xv - delta)?;
                            let yv = tx.load(y)?;
                            tx.store(y, yv + delta)?;
                        }
                        Ok(())
                    });
                } else {
                    // Readers check the invariant transactionally.
                    let (xv, yv) = ctx.atomic(|tx| Ok((tx.load(x)?, tx.load(y)?)));
                    assert_eq!(xv + yv, 1000, "{platform}: torn read escaped isolation");
                }
            }
        });
        assert_eq!(sim.read_word(x) + sim.read_word(y), 1000, "{platform}");
    }
}

/// Lazy subscription (Blue Gene/Q long-running) with constant lock
/// fallbacks: transactions that keep running through an irrevocable
/// section must never commit inconsistent state.
#[test]
fn lazy_subscription_is_safe_under_constant_fallbacks() {
    use htm_compare::machine::{BgqMode, MachineConfig};
    let sim = Sim::of(MachineConfig::blue_gene_q(BgqMode::LongRunning));
    let x = sim.alloc().alloc_aligned(1, 64);
    let y = sim.alloc().alloc_aligned(1, 64);
    sim.write_word(x, 500);
    sim.write_word(y, 500);
    sim.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
        // Zero retries: every abort goes straight to the lock, so
        // irrevocable sections constantly overlap running transactions.
        let tid = ctx.thread_id();
        for i in 0..400u64 {
            if tid % 2 == 0 {
                ctx.atomic(|tx| {
                    let xv = tx.load(x)?;
                    let d = i % 3 + 1;
                    if xv >= d {
                        tx.store(x, xv - d)?;
                        let yv = tx.load(y)?;
                        tx.store(y, yv + d)?;
                    }
                    Ok(())
                });
            } else {
                let (xv, yv) = ctx.atomic(|tx| Ok((tx.load(x)?, tx.load(y)?)));
                assert_eq!(xv + yv, 1000, "lazy subscription leaked a torn pair");
            }
        }
    });
    assert_eq!(sim.read_word(x) + sim.read_word(y), 1000);
}

/// The global-lock fallback must interoperate with hardware transactions:
/// force constant fallbacks (zero retries) and check nothing is lost.
#[test]
fn lock_fallback_interoperates_with_transactions() {
    let sim = Sim::of(Platform::Power8.config());
    let a = sim.alloc().alloc(1);
    let stats = sim.run_parallel(4, RetryPolicy::uniform(0), |ctx| {
        for _ in 0..300 {
            ctx.atomic(|tx| {
                let v = tx.load(a)?;
                tx.store(a, v + 1)
            });
        }
    });
    assert_eq!(sim.read_word(a), 1200);
    // With zero retries, every abort serializes.
    assert!(stats.committed_blocks() == 1200);
}
