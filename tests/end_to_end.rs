//! End-to-end integration: every STAMP benchmark builds, runs and verifies
//! on every platform model, through the public workspace API.

use htm_compare::machine::Platform;
use htm_compare::stamp::{run_bench, BenchId, BenchParams, Scale, Variant};

fn tiny_params(threads: u32) -> BenchParams {
    BenchParams { threads, scale: Scale::Tiny, ..Default::default() }
}

#[test]
fn every_benchmark_verifies_on_every_platform_modified() {
    for bench in BenchId::ALL {
        for platform in Platform::ALL {
            let r = run_bench(bench, Variant::Modified, &platform.config(), &tiny_params(2));
            assert!(r.stats.committed_blocks() > 0, "{bench} on {platform} did no work");
            assert!(r.seq_cycles > 0, "{bench} on {platform} has no baseline");
        }
    }
}

#[test]
fn every_benchmark_verifies_original_variant() {
    for bench in BenchId::ALL {
        let r = run_bench(bench, Variant::Original, &Platform::Power8.config(), &tiny_params(2));
        assert!(r.stats.committed_blocks() > 0, "{bench} original did no work");
    }
}

#[test]
fn four_thread_runs_on_full_suite_zec12() {
    for bench in BenchId::ALL {
        let r = run_bench(bench, Variant::Modified, &Platform::Zec12.config(), &tiny_params(4));
        assert!(r.speedup() > 0.0, "{bench}");
    }
}

#[test]
fn hle_runs_the_suite_on_intel() {
    for bench in [BenchId::KmeansLow, BenchId::VacationHigh, BenchId::Ssca2] {
        let r = htm_compare::stamp::hle::run_bench_hle(
            bench,
            &Platform::IntelCore.config(),
            &tiny_params(4),
        );
        assert!(r.stats.committed_blocks() > 0, "{bench} under HLE");
    }
}

#[test]
#[should_panic(expected = "no hardware lock elision")]
fn hle_rejected_on_power8() {
    let _ = htm_compare::stamp::hle::run_bench_hle(
        BenchId::Ssca2,
        &Platform::Power8.config(),
        &tiny_params(2),
    );
}

#[test]
fn footprint_tracing_matches_capacity_expectations() {
    // The labyrinth grid snapshot must dwarf every other benchmark's
    // footprint, as in the paper's Figure 10.
    let machine = Platform::IntelCore.config();
    let lb = htm_compare::stamp::trace_bench(
        BenchId::Labyrinth,
        Variant::Modified,
        &machine,
        Scale::Tiny,
        &[64],
        42,
    );
    let km = htm_compare::stamp::trace_bench(
        BenchId::KmeansLow,
        Variant::Modified,
        &machine,
        Scale::Tiny,
        &[64],
        42,
    );
    assert!(
        lb.p90_load_bytes(0) > 10 * km.p90_load_bytes(0),
        "labyrinth {} B vs kmeans {} B",
        lb.p90_load_bytes(0),
        km.p90_load_bytes(0)
    );
}
